// Package remote exposes any store.Store over the TCP transport of
// internal/rpc, so a confederation can run as separate OS processes: one
// orchestra-store server hosting the central store and one orchestra-peer
// process per participant. Trust policies travel as text in the predicate
// language of internal/trust.
//
// The client can retry transient failures (WithRetryPolicy): each
// non-idempotent operation then carries a client-generated idempotency key
// inside its request body, so a retried delivery dedupes server-side
// instead of double-applying. The key travels in the encoded args — the
// retry layer reuses the body verbatim across attempts, which is exactly
// what keeps the key constant.
package remote

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/rpc"
	"orchestra/internal/store"
	"orchestra/internal/trust"
)

// Method names.
const (
	mRegister     = "store.register"
	mPublish      = "store.publish"
	mBegin        = "store.begin"
	mDecide       = "store.decide"
	mDecideBatch  = "store.decide.batch"
	mRecno        = "store.recno"
	mReplay       = "store.replay"
	mCanReplay    = "store.canreplay"
	mCanSnapshot  = "store.cansnapshot"
	mCanDedupe    = "store.candedupe"
	mTakeSnapshot = "store.snapshot.take"
	mSnapshot     = "store.snapshot"
	mReplayFrom   = "store.replayfrom"
	mCompact      = "store.compact"
	mWatch        = "store.watch"
	mCanWatch     = "store.canwatch"
	mEffTrust     = "store.trust.effective"
)

type registerArgs struct {
	Peer   core.PeerID
	Policy string
}

type publishArgs struct {
	Peer core.PeerID
	// Payload is the published batch in the store codec's binary encoding
	// (store.AppendPublishedTxns) — the transaction graph never crosses the
	// wire as gob, whose per-encoder type descriptors made every publish
	// re-ship the schema of the whole Transaction/Update tree.
	Payload []byte
	// Key, when non-empty, dedupes retried deliveries server-side.
	Key store.IdempotencyKey
}

type publishReply struct {
	Epoch core.Epoch
}

type beginArgs struct {
	Peer core.PeerID
	Key  store.IdempotencyKey
}

type wireCandidate struct {
	Txn      *core.Transaction
	Priority int
	Ext      []*core.Transaction
}

type beginReply struct {
	Recno      int
	FromEpoch  core.Epoch
	ToEpoch    core.Epoch
	Candidates []wireCandidate
}

type decideArgs struct {
	Peer     core.PeerID
	Recno    int
	Accepted []core.TxnID
	Rejected []core.TxnID
	Key      store.IdempotencyKey
}

type decideBatchArgs struct {
	Batches []store.DecisionBatch
	Key     store.IdempotencyKey
}

type recnoArgs struct {
	Peer core.PeerID
}

type effTrustArgs struct {
	Peer core.PeerID
}

type effTrustReply struct {
	// Policy is the peer's effective trust in textual form. Over the wire
	// everything is textual (Client.RegisterPeer refuses anything else),
	// so the resolved closure round-trips losslessly as text.
	Policy string
}

type recnoReply struct {
	Recno int
}

type canReplayReply struct {
	OK bool
}

type replayArgs struct {
	Peer core.PeerID
}

type replayReply struct {
	// Log is the full published log in global order, binary-codec encoded
	// like a publish payload.
	Log       []byte
	Decisions map[core.TxnID]core.RestoredDecision
}

type takeSnapshotArgs struct {
	Key store.IdempotencyKey
}

type takeSnapshotReply struct {
	Epoch core.Epoch
}

type snapshotReply struct {
	// Snapshot is the retained snapshot in the store codec's binary
	// encoding (store.AppendSnapshot); empty when none is retained.
	Snapshot []byte
}

type replayFromArgs struct {
	Peer     core.PeerID
	From     core.Epoch
	AfterSeq int64
}

type compactArgs struct {
	Epoch core.Epoch
	Key   store.IdempotencyKey
}

// watchArgs is one bounded long-poll of the watch stream: the transport
// serializes calls per connection, so the subscription crosses the wire as
// a sequence of short polls rather than one unbounded stream — each poll
// waits server-side up to WaitNanos for the stable frontier to pass From.
// The poll is read-only and resumable by cursor (a redelivery with the same
// From returns the same window), so it composes with rpc.WithRetry without
// idempotency keys.
type watchArgs struct {
	From core.Epoch
	// WaitNanos bounds the server-side wait; the server clamps it to
	// maxWatchWait.
	WaitNanos int64
}

type watchReply struct {
	// To is the stable frontier observed by the poll; To == From means the
	// bound elapsed with no advance (an empty poll).
	To core.Epoch
	// Payload is the window (From, To]'s published transactions in the
	// store codec's binary encoding (store.AppendPublishedTxns).
	Payload []byte
}

// maxWatchWait caps the server-side wait of one watch poll, so a client
// that requests an absurd bound cannot pin a server connection forever.
const maxWatchWait = 30 * time.Second

// withKey attaches a wire-carried idempotency key to the handler's context,
// where the backend's dedup machinery picks it up.
func withKey(ctx context.Context, key store.IdempotencyKey) context.Context {
	if key == "" {
		return ctx
	}
	return store.WithIdempotencyKey(ctx, key)
}

// Server adapts a store.Store to the RPC transport.
type Server struct {
	backend store.Store
	schema  *core.Schema
	mux     *rpc.Mux
	srv     *rpc.Server
}

// NewServer wraps the backend; trust policies received from clients are
// compiled against the schema.
func NewServer(backend store.Store, schema *core.Schema) *Server {
	s := &Server{backend: backend, schema: schema}
	mux := rpc.NewMux()
	mux.Handle(mRegister, s.register)
	mux.Handle(mPublish, s.publish)
	mux.Handle(mBegin, s.begin)
	mux.Handle(mDecide, s.decide)
	mux.Handle(mDecideBatch, s.decideBatch)
	mux.Handle(mRecno, s.recno)
	mux.Handle(mReplay, s.replay)
	mux.Handle(mCanReplay, s.canReplay)
	mux.Handle(mCanSnapshot, s.canSnapshot)
	mux.Handle(mCanDedupe, s.canDedupe)
	mux.Handle(mTakeSnapshot, s.takeSnapshot)
	mux.Handle(mSnapshot, s.latestSnapshot)
	mux.Handle(mReplayFrom, s.replayFrom)
	mux.Handle(mCompact, s.compact)
	mux.Handle(mWatch, s.watch)
	mux.Handle(mCanWatch, s.canWatch)
	mux.Handle(mCanMultiGroup, s.canMultiGroup)
	mux.Handle(mEffTrust, s.effectiveTrust)
	s.mux = mux
	s.srv = rpc.NewServer(mux)
	return s
}

// Handler exposes the server's dispatch table as an rpc.Handler, so the
// same store server can be mounted on any transport — a simnet node in
// chaos tests, TCP in production — without going through Listen.
func (s *Server) Handler() rpc.Handler { return s.mux }

// Listen binds addr and serves in the background, returning the bound
// address.
func (s *Server) Listen(addr string) (string, error) { return s.srv.Listen(addr) }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) register(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args registerArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	policy, err := trust.Parse(args.Policy)
	if err != nil {
		return nil, fmt.Errorf("remote: peer %s policy: %w", args.Peer, err)
	}
	policy.WithSchema(s.schema)
	if err := s.backend.RegisterPeer(ctx, args.Peer, policy); err != nil {
		return nil, err
	}
	return rpc.Encode(&struct{}{})
}

func (s *Server) publish(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args publishArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	txns, err := store.DecodePublishedTxns(args.Payload)
	if err != nil {
		return nil, fmt.Errorf("remote: publish payload from %s: %w", args.Peer, err)
	}
	epoch, err := s.backend.Publish(withKey(ctx, args.Key), args.Peer, txns)
	if err != nil {
		return nil, err
	}
	return rpc.Encode(&publishReply{Epoch: epoch})
}

func (s *Server) begin(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args beginArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	rec, err := s.backend.BeginReconciliation(withKey(ctx, args.Key), args.Peer)
	if err != nil {
		return nil, err
	}
	reply := beginReply{Recno: rec.Recno, FromEpoch: rec.FromEpoch, ToEpoch: rec.ToEpoch}
	for _, c := range rec.Candidates {
		reply.Candidates = append(reply.Candidates, wireCandidate{
			Txn: c.Txn, Priority: c.Priority, Ext: c.Ext,
		})
	}
	return rpc.Encode(&reply)
}

func (s *Server) decide(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args decideArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	if err := s.backend.RecordDecisions(withKey(ctx, args.Key), args.Peer, args.Recno, args.Accepted, args.Rejected); err != nil {
		return nil, err
	}
	return rpc.Encode(&struct{}{})
}

func (s *Server) decideBatch(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args decideBatchArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	if err := s.backend.RecordDecisionsBatch(withKey(ctx, args.Key), args.Batches); err != nil {
		return nil, err
	}
	return rpc.Encode(&struct{}{})
}

func (s *Server) recno(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args recnoArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	n, err := s.backend.CurrentRecno(ctx, args.Peer)
	if err != nil {
		return nil, err
	}
	return rpc.Encode(&recnoReply{Recno: n})
}

func (s *Server) canReplay(ctx context.Context, _ rpc.Request) ([]byte, error) {
	return rpc.Encode(&canReplayReply{OK: store.CanReplay(ctx, s.backend)})
}

func (s *Server) replay(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args replayArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	rp, ok := s.backend.(store.Replayer)
	if !ok {
		return nil, fmt.Errorf("remote: backend %T cannot replay peer state", s.backend)
	}
	log, decisions, err := rp.ReplayFor(ctx, args.Peer)
	if err != nil {
		return nil, err
	}
	return rpc.Encode(&replayReply{
		Log:       store.AppendPublishedTxns(nil, log),
		Decisions: decisions,
	})
}

func (s *Server) canSnapshot(ctx context.Context, _ rpc.Request) ([]byte, error) {
	return rpc.Encode(&canReplayReply{OK: store.CanSnapshot(ctx, s.backend)})
}

func (s *Server) canDedupe(ctx context.Context, _ rpc.Request) ([]byte, error) {
	return rpc.Encode(&canReplayReply{OK: store.CanDedupe(ctx, s.backend)})
}

func (s *Server) takeSnapshot(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args takeSnapshotArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	sn, ok := s.backend.(store.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("remote: backend %T cannot take snapshots", s.backend)
	}
	epoch, err := sn.Snapshot(withKey(ctx, args.Key))
	if err != nil {
		return nil, err
	}
	return rpc.Encode(&takeSnapshotReply{Epoch: epoch})
}

func (s *Server) latestSnapshot(ctx context.Context, _ rpc.Request) ([]byte, error) {
	sr, ok := s.backend.(store.SnapshotReplayer)
	if !ok {
		return nil, fmt.Errorf("remote: backend %T retains no snapshots", s.backend)
	}
	snap, err := sr.LatestSnapshot(ctx)
	if err != nil {
		return nil, err
	}
	reply := snapshotReply{}
	if snap != nil {
		reply.Snapshot = store.AppendSnapshot(nil, snap)
	}
	return rpc.Encode(&reply)
}

func (s *Server) replayFrom(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args replayFromArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	sr, ok := s.backend.(store.SnapshotReplayer)
	if !ok {
		return nil, fmt.Errorf("remote: backend %T cannot replay a tail", s.backend)
	}
	log, decisions, err := sr.ReplayFrom(ctx, args.Peer, args.From, args.AfterSeq)
	if err != nil {
		return nil, err
	}
	return rpc.Encode(&replayReply{
		Log:       store.AppendPublishedTxns(nil, log),
		Decisions: decisions,
	})
}

func (s *Server) compact(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args compactArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	sn, ok := s.backend.(store.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("remote: backend %T cannot compact", s.backend)
	}
	if err := sn.CompactBefore(withKey(ctx, args.Key), args.Epoch); err != nil {
		return nil, err
	}
	return rpc.Encode(&struct{}{})
}

// effectiveTrust serves a peer's resolved trust as text. Delegation
// closures computed by the backend's trust graph travel as the flattened
// effective policy, so the client never needs the other members' policies.
func (s *Server) effectiveTrust(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args effTrustArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	tr, ok := s.backend.(store.TrustResolver)
	if !ok {
		return nil, fmt.Errorf("remote: backend %T does not resolve trust", s.backend)
	}
	t, err := tr.EffectiveTrust(ctx, args.Peer)
	if err != nil {
		return nil, err
	}
	pol, ok := t.(*trust.Policy)
	if !ok {
		return nil, fmt.Errorf("remote: peer %s effective trust %T is not textual", args.Peer, t)
	}
	return rpc.Encode(&effTrustReply{Policy: pol.String()})
}

func (s *Server) canWatch(ctx context.Context, _ rpc.Request) ([]byte, error) {
	return rpc.Encode(&canReplayReply{OK: store.CanWatch(ctx, s.backend)})
}

// watch serves one bounded long-poll: it subscribes to the backend at the
// client's cursor for at most the requested wait and relays the first
// window that arrives (or an empty poll). The subscription registered for
// the call's duration also pins the backend's compaction horizon at the
// cursor while the poll is in flight.
func (s *Server) watch(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args watchArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	w, ok := s.backend.(store.Watcher)
	if !ok {
		return nil, fmt.Errorf("remote: backend %T does not support watch subscriptions", s.backend)
	}
	wait := time.Duration(args.WaitNanos)
	if wait <= 0 || wait > maxWatchWait {
		wait = maxWatchWait
	}
	wctx, cancel := context.WithTimeout(ctx, wait)
	defer cancel()
	ch, err := w.WatchFrom(wctx, args.From)
	if err != nil {
		return nil, err
	}
	ev, ok := <-ch
	if !ok {
		// The bound elapsed with no frontier advance (or the backend shut
		// down): an empty poll, the client re-polls from the same cursor.
		return rpc.Encode(&watchReply{To: args.From})
	}
	return rpc.Encode(&watchReply{To: ev.To, Payload: store.AppendPublishedTxns(nil, ev.Txns)})
}

// Client implements store.Store against a remote Server. Trust policies
// must be textual (*trust.Policy): predicate code cannot travel over the
// wire.
type Client struct {
	caller rpc.Caller
	addr   string

	// retrying is set by WithRetryPolicy; only a retrying client generates
	// idempotency keys (without retries this client never produces
	// duplicate deliveries, so keys would only grow the server's dedup
	// table for nothing).
	retrying  bool
	keyPrefix string
	keyCtr    atomic.Int64
	// dedupe caches the server capability probe: 0 unprobed, 1 dedupes,
	// -1 does not.
	dedupe atomic.Int32
	// watchable caches the watch capability probe the same way.
	watchable atomic.Int32
	// watchPoll bounds the server-side wait of each watch long-poll (see
	// WithWatchPoll).
	watchPoll time.Duration
	// group is the method prefix ("group/<encoded id>/", or empty) a
	// WithGroup client stamps on every store call, routing it to one tenant
	// of a multi-group server (see GroupServer).
	group string
}

// m maps a store method name to the wire method this client calls:
// group-scoped clients prefix every call with their group route.
func (c *Client) m(name string) string { return c.group + name }

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRetryPolicy wraps the client's transport so every call retries
// transient failures under the policy. A nil Classify defaults to
// store.IsTransient. With retries on, the client attaches idempotency keys
// to its non-idempotent operations (Publish, BeginReconciliation, the
// decision writes, Snapshot, CompactBefore) whenever the server reports it
// can dedupe, making the retries safe end to end.
func WithRetryPolicy(p rpc.RetryPolicy) ClientOption {
	return func(c *Client) {
		if p.Classify == nil {
			p.Classify = store.IsTransient
		}
		c.caller = rpc.WithRetry(c.caller, p)
		c.retrying = true
	}
}

// DefaultWatchPoll is the default server-side wait bound of one watch
// long-poll. The bound only matters while the stream is idle — a frontier
// advance completes the poll immediately — but it caps how long a poll can
// occupy the client's serialized connection, so other store calls from the
// same client are never delayed longer than this.
const DefaultWatchPoll = 200 * time.Millisecond

// watchWaitSlack pads the client-side deadline of a watch poll past the
// server-side wait bound, leaving room for transport latency and a few
// in-budget retry attempts.
const watchWaitSlack = 250 * time.Millisecond

// WithWatchPoll sets the server-side wait bound of each watch long-poll.
// Shorter bounds make an idle subscription poll more often but reduce the
// worst-case delay the poll imposes on other calls sharing the client's
// connection.
func WithWatchPoll(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.watchPoll = d
		}
	}
}

// WithGroup scopes every call of this client to one group of a
// multi-group server (GroupServer): method names travel with the group's
// route prefix. Against a single-group Server the prefixed methods do not
// resolve, so a group-scoped client only works with a group gateway.
func WithGroup(group string) ClientOption {
	return func(c *Client) {
		c.group = "group/" + store.EncodeNamespace(group) + "/"
	}
}

// NewClient returns a client for the server at addr.
func NewClient(from, addr string, opts ...ClientOption) *Client {
	return NewClientOn(rpc.NewClient(from), addr, opts...)
}

// NewClientOn returns a client using an existing transport (e.g. a simnet
// node in tests).
func NewClientOn(caller rpc.Caller, addr string, opts ...ClientOption) *Client {
	c := &Client{caller: caller, addr: addr, keyPrefix: randomKeyPrefix(), watchPoll: DefaultWatchPoll}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// randomKeyPrefix draws a fresh random namespace for this client's
// idempotency keys, so distinct clients (and client restarts) never collide.
func randomKeyPrefix() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("remote: idempotency key entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// serverDedupes probes (once) whether the server's backend dedupes keyed
// calls. Transient probe failures are not cached, so the next operation
// re-probes.
func (c *Client) serverDedupes(ctx context.Context) bool {
	if v := c.dedupe.Load(); v != 0 {
		return v > 0
	}
	var reply canReplayReply
	if err := rpc.Invoke(ctx, c.caller, c.addr, c.m(mCanDedupe), &struct{}{}, &reply); err != nil {
		if !store.IsTransient(err) {
			// A server without the capability RPC (or one that refuses it)
			// will keep refusing; cache the no.
			c.dedupe.Store(-1)
		}
		return false
	}
	if reply.OK {
		c.dedupe.Store(1)
	} else {
		c.dedupe.Store(-1)
	}
	return reply.OK
}

// key picks the idempotency key an operation travels with: a key the caller
// placed in ctx wins; otherwise a retrying client mints one per call (the
// key sits in the encoded request body, which the retry layer reuses
// verbatim, so all attempts of one call share it).
func (c *Client) key(ctx context.Context, op string) store.IdempotencyKey {
	if k, ok := store.IdempotencyKeyFrom(ctx); ok {
		return k
	}
	if !c.retrying || !c.serverDedupes(ctx) {
		return ""
	}
	return store.IdempotencyKey(fmt.Sprintf("%s/%s/%d", c.keyPrefix, op, c.keyCtr.Add(1)))
}

// CanDedupe implements store.IdempotencyProber by forwarding the question
// to the server's backend.
func (c *Client) CanDedupe(ctx context.Context) bool { return c.serverDedupes(ctx) }

// RegisterPeer implements store.Store. The trust policy must be a
// *trust.Policy. Registration is naturally idempotent (an upsert), so it
// travels unkeyed.
func (c *Client) RegisterPeer(ctx context.Context, peer core.PeerID, t core.Trust) error {
	policy, ok := t.(*trust.Policy)
	if !ok {
		return fmt.Errorf("remote: peer %s: trust policy must be a *trust.Policy (textual rules)", peer)
	}
	return rpc.Invoke(ctx, c.caller, c.addr, c.m(mRegister),
		&registerArgs{Peer: peer, Policy: policy.String()}, nil)
}

// Publish implements store.Store; the batch travels in the binary store
// codec, not gob.
func (c *Client) Publish(ctx context.Context, peer core.PeerID, txns []store.PublishedTxn) (core.Epoch, error) {
	var reply publishReply
	args := publishArgs{Peer: peer, Payload: store.AppendPublishedTxns(nil, txns), Key: c.key(ctx, "publish")}
	if err := rpc.Invoke(ctx, c.caller, c.addr, c.m(mPublish), &args, &reply); err != nil {
		return 0, err
	}
	return reply.Epoch, nil
}

// BeginReconciliation implements store.Store. Keyed like the writes: the
// store advances the peer's frontier past the window it hands out, so a
// retried begin must replay the first delivery's window rather than be
// given a new (empty) one.
func (c *Client) BeginReconciliation(ctx context.Context, peer core.PeerID) (*store.Reconciliation, error) {
	var reply beginReply
	args := beginArgs{Peer: peer, Key: c.key(ctx, "begin")}
	if err := rpc.Invoke(ctx, c.caller, c.addr, c.m(mBegin), &args, &reply); err != nil {
		return nil, err
	}
	rec := &store.Reconciliation{Recno: reply.Recno, FromEpoch: reply.FromEpoch, ToEpoch: reply.ToEpoch}
	for _, wc := range reply.Candidates {
		rec.Candidates = append(rec.Candidates, &core.Candidate{
			Txn: wc.Txn, Priority: wc.Priority, Ext: wc.Ext,
		})
	}
	return rec, nil
}

// RecordDecisions implements store.Store.
func (c *Client) RecordDecisions(ctx context.Context, peer core.PeerID, recno int, accepted, rejected []core.TxnID) error {
	args := decideArgs{Peer: peer, Recno: recno, Accepted: accepted, Rejected: rejected, Key: c.key(ctx, "decide")}
	return rpc.Invoke(ctx, c.caller, c.addr, c.m(mDecide), &args, nil)
}

// RecordDecisionsBatch implements store.Store: the whole wave's decisions
// travel in one network round trip.
func (c *Client) RecordDecisionsBatch(ctx context.Context, batches []store.DecisionBatch) error {
	args := decideBatchArgs{Batches: batches, Key: c.key(ctx, "decide.batch")}
	return rpc.Invoke(ctx, c.caller, c.addr, c.m(mDecideBatch), &args, nil)
}

// CurrentRecno implements store.Store.
func (c *Client) CurrentRecno(ctx context.Context, peer core.PeerID) (int, error) {
	var reply recnoReply
	if err := rpc.Invoke(ctx, c.caller, c.addr, c.m(mRecno), &recnoArgs{Peer: peer}, &reply); err != nil {
		return 0, err
	}
	return reply.Recno, nil
}

// EffectiveTrust implements store.TrustResolver by RPC. The policy comes
// back as a fresh parsed copy with no schema bound; callers that evaluate
// attr('name') predicates locally bind their own schema (store.Peer does).
func (c *Client) EffectiveTrust(ctx context.Context, peer core.PeerID) (core.Trust, error) {
	var reply effTrustReply
	if err := rpc.Invoke(ctx, c.caller, c.addr, c.m(mEffTrust), &effTrustArgs{Peer: peer}, &reply); err != nil {
		return nil, err
	}
	pol, err := trust.Parse(reply.Policy)
	if err != nil {
		return nil, fmt.Errorf("remote: effective trust payload: %w", err)
	}
	return pol, nil
}

// CanReplay implements store.ReplayProber: the client's ReplayFor stub
// always exists, but whether replay works depends on the backend at the
// other end of the wire, so the capability question travels as an RPC. An
// unreachable or pre-probe server counts as "cannot replay".
func (c *Client) CanReplay(ctx context.Context) bool {
	var reply canReplayReply
	if err := rpc.Invoke(ctx, c.caller, c.addr, c.m(mCanReplay), &struct{}{}, &reply); err != nil {
		return false
	}
	return reply.OK
}

// ReplayFor implements store.Replayer when the server's backend does: the
// full log crosses the wire once, in the binary store codec, so a lost
// participant can rebuild its soft state from a remote store exactly as
// from a local one (store.RebuildPeer).
func (c *Client) ReplayFor(ctx context.Context, peer core.PeerID) ([]store.PublishedTxn, map[core.TxnID]core.RestoredDecision, error) {
	var reply replayReply
	if err := rpc.Invoke(ctx, c.caller, c.addr, c.m(mReplay), &replayArgs{Peer: peer}, &reply); err != nil {
		return nil, nil, err
	}
	log, err := store.DecodePublishedTxns(reply.Log)
	if err != nil {
		return nil, nil, fmt.Errorf("remote: replay payload: %w", err)
	}
	return log, reply.Decisions, nil
}

// CanSnapshot implements store.SnapshotProber: like CanReplay, the stubs
// below always exist, but whether snapshots work depends on the backend at
// the other end of the wire.
func (c *Client) CanSnapshot(ctx context.Context) bool {
	var reply canReplayReply
	if err := rpc.Invoke(ctx, c.caller, c.addr, c.m(mCanSnapshot), &struct{}{}, &reply); err != nil {
		return false
	}
	return reply.OK
}

// Snapshot implements store.Snapshotter by proxy: the server's backend
// takes and retains the snapshot; only the covered epoch returns.
func (c *Client) Snapshot(ctx context.Context) (core.Epoch, error) {
	var reply takeSnapshotReply
	args := takeSnapshotArgs{Key: c.key(ctx, "snapshot")}
	if err := rpc.Invoke(ctx, c.caller, c.addr, c.m(mTakeSnapshot), &args, &reply); err != nil {
		return 0, err
	}
	return reply.Epoch, nil
}

// CompactBefore implements store.Snapshotter by proxy; the backend enforces
// the compaction safety invariants and its refusals travel back as errors.
func (c *Client) CompactBefore(ctx context.Context, e core.Epoch) error {
	args := compactArgs{Epoch: e, Key: c.key(ctx, "compact")}
	return rpc.Invoke(ctx, c.caller, c.addr, c.m(mCompact), &args, nil)
}

// LatestSnapshot implements store.SnapshotReplayer: the retained snapshot
// crosses the wire once in the binary snapshot codec. Together with
// ReplayFrom this is the two-round-trip catch-up path store.RebuildPeer
// uses against a remote store.
func (c *Client) LatestSnapshot(ctx context.Context) (*store.Snapshot, error) {
	var reply snapshotReply
	if err := rpc.Invoke(ctx, c.caller, c.addr, c.m(mSnapshot), &struct{}{}, &reply); err != nil {
		return nil, err
	}
	if len(reply.Snapshot) == 0 {
		return nil, nil
	}
	snap, err := store.DecodeSnapshot(reply.Snapshot)
	if err != nil {
		return nil, fmt.Errorf("remote: snapshot payload: %w", err)
	}
	return snap, nil
}

// CanWatch implements store.WatchProber: whether subscriptions work
// depends on the backend at the other end of the wire, so the question
// travels as a capability RPC (cached; transient probe failures are not).
func (c *Client) CanWatch(ctx context.Context) bool {
	if v := c.watchable.Load(); v != 0 {
		return v > 0
	}
	var reply canReplayReply
	if err := rpc.Invoke(ctx, c.caller, c.addr, c.m(mCanWatch), &struct{}{}, &reply); err != nil {
		if !store.IsTransient(err) {
			// A server without the capability RPC will keep refusing.
			c.watchable.Store(-1)
		}
		return false
	}
	if reply.OK {
		c.watchable.Store(1)
	} else {
		c.watchable.Store(-1)
	}
	return reply.OK
}

// WatchFrom implements store.Watcher by proxy: a sequence of bounded
// long-polls, each resuming at the cursor of the last delivered event. The
// polls ride the client's (possibly retrying) transport — they are
// read-only and idempotent by cursor, so redeliveries are harmless — and a
// poll that fails past retries closes the channel; the consumer resumes by
// subscribing again from its cursor.
func (c *Client) WatchFrom(ctx context.Context, from core.Epoch) (<-chan store.WatchEvent, error) {
	if !c.CanWatch(ctx) {
		return nil, fmt.Errorf("remote: backend at %s does not support watch subscriptions", c.addr)
	}
	ch := make(chan store.WatchEvent)
	go c.watchLoop(ctx, from, ch)
	return ch, nil
}

func (c *Client) watchLoop(ctx context.Context, cursor core.Epoch, ch chan<- store.WatchEvent) {
	defer close(ch)
	for ctx.Err() == nil {
		var reply watchReply
		pollCtx, cancel := context.WithTimeout(ctx, c.watchPoll+watchWaitSlack)
		err := rpc.Invoke(pollCtx, c.caller, c.addr, c.m(mWatch),
			&watchArgs{From: cursor, WaitNanos: int64(c.watchPoll)}, &reply)
		cancel()
		if err != nil {
			// Retries already absorbed transient faults inside the poll; an
			// error surfacing here breaks the subscription. The cursor never
			// advanced past an undelivered window, so resuming from it skips
			// nothing.
			return
		}
		if reply.To <= cursor {
			continue // empty poll
		}
		txns, err := store.DecodePublishedTxns(reply.Payload)
		if err != nil {
			return
		}
		select {
		case ch <- store.WatchEvent{From: cursor, To: reply.To, Txns: txns}:
			cursor = reply.To
		case <-ctx.Done():
			return
		}
	}
}

// ReplayFrom implements store.SnapshotReplayer: the post-snapshot tail and
// the peer's post-snapshot decisions in one round trip.
func (c *Client) ReplayFrom(ctx context.Context, peer core.PeerID, from core.Epoch, afterSeq int64) ([]store.PublishedTxn, map[core.TxnID]core.RestoredDecision, error) {
	var reply replayReply
	args := replayFromArgs{Peer: peer, From: from, AfterSeq: afterSeq}
	if err := rpc.Invoke(ctx, c.caller, c.addr, c.m(mReplayFrom), &args, &reply); err != nil {
		return nil, nil, err
	}
	log, err := store.DecodePublishedTxns(reply.Log)
	if err != nil {
		return nil, nil, fmt.Errorf("remote: tail payload: %w", err)
	}
	return log, reply.Decisions, nil
}
