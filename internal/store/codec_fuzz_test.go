package store

import (
	"reflect"
	"testing"

	"orchestra/internal/core"
)

// fuzzSeedBatch is a representative published batch: multi-update
// transactions, every op kind, modify with a replacement tuple, and an
// antecedent list — so mutation-based fuzzing starts from payloads that
// exercise every branch of the decoder.
func fuzzSeedBatch() []PublishedTxn {
	x1 := core.NewTransaction(core.TxnID{Origin: "pa", Seq: 1},
		core.Insert("F", core.Strs("rat", "prot1", "cell-metab"), "pa"))
	x2 := core.NewTransaction(core.TxnID{Origin: "pb", Seq: 7},
		core.Modify("F", core.Strs("rat", "prot1", "cell-metab"), core.Strs("rat", "prot1", "immune"), "pb"),
		core.Delete("F", core.Strs("mouse", "prot2", "x"), "pb"))
	x2.Epoch, x2.Order = 3, 3<<20|1
	return []PublishedTxn{
		{Txn: x1},
		{Txn: x2, Antecedents: []core.TxnID{{Origin: "pa", Seq: 1}, {Origin: "pz", Seq: 0}}},
	}
}

// FuzzDecodePublishedTxns feeds arbitrary bytes — including random
// mutations of valid payloads, via the seed corpus — to the publish-batch
// decoder. The decoder must never panic and never "silently decode":
// anything it accepts must be a canonical batch, i.e. re-encoding the
// decoded value and decoding again reproduces it exactly. (A corrupt
// payload that happens to parse is indistinguishable from a valid one by
// construction; the canonical round-trip is the strongest property a
// length-prefixed format can promise.)
func FuzzDecodePublishedTxns(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0}) // valid empty batch
	f.Add([]byte{0, 0}) // wrong version
	f.Add(AppendPublishedTxns(nil, nil))
	f.Add(AppendPublishedTxns(nil, fuzzSeedBatch()))
	f.Fuzz(func(t *testing.T, data []byte) {
		txns, err := DecodePublishedTxns(data)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		re := AppendPublishedTxns(nil, txns)
		again, err := DecodePublishedTxns(re)
		if err != nil {
			t.Fatalf("re-encoded batch failed to decode: %v\ninput: %x", err, data)
		}
		if !reflect.DeepEqual(txns, again) {
			t.Fatalf("decode not canonical:\nfirst:  %#v\nsecond: %#v\ninput: %x", txns, again, data)
		}
	})
}
