package store

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"syscall"
	"testing"
	"time"

	"orchestra/internal/simnet"
)

func TestIsTransientClassification(t *testing.T) {
	transient := []error{
		simnet.ErrUnreachable,
		simnet.ErrTimeout,
		fmt.Errorf("wrapped: %w", simnet.ErrUnreachable),
		fmt.Errorf("request a -> b m: %w", simnet.ErrTimeout),
		context.DeadlineExceeded,
		os.ErrDeadlineExceeded,
		syscall.ECONNREFUSED,
		syscall.ECONNRESET,
		syscall.ECONNABORTED,
		syscall.EPIPE,
		fmt.Errorf("dial: %w", syscall.ECONNREFUSED),
		&net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED},
		&net.OpError{Op: "read", Net: "tcp", Err: os.ErrDeadlineExceeded},
	}
	for _, err := range transient {
		if !IsTransient(err) {
			t.Errorf("IsTransient(%v) = false, want true", err)
		}
	}

	permanent := []error{
		nil,
		errors.New("central: unknown peer px"),
		fmt.Errorf("remote: peer pa policy: parse error"),
		context.Canceled, // a deliberate abort must not be retried
	}
	for _, err := range permanent {
		if IsTransient(err) {
			t.Errorf("IsTransient(%v) = true, want false", err)
		}
	}
}

// timeoutNetError exercises the generic net.Error timeout branch.
type timeoutNetError struct{}

func (timeoutNetError) Error() string   { return "synthetic i/o timeout" }
func (timeoutNetError) Timeout() bool   { return true }
func (timeoutNetError) Temporary() bool { return false }

func TestIsTransientNetError(t *testing.T) {
	if !IsTransient(timeoutNetError{}) {
		t.Error("net.Error with Timeout() = true should be transient")
	}
	if !IsTransient(fmt.Errorf("call: %w", timeoutNetError{})) {
		t.Error("wrapped net.Error timeout should be transient")
	}
}

// TestIsTransientRealDial pins the classifier to a real failed TCP dial:
// connection refused on a port nothing listens on.
func TestIsTransientRealDial(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // now nothing listens there
	_, err = net.DialTimeout("tcp", addr, time.Second)
	if err == nil {
		t.Skip("dial unexpectedly succeeded; port reused")
	}
	if !IsTransient(err) {
		t.Errorf("IsTransient(%v) = false for a refused dial", err)
	}
}
