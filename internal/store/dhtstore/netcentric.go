package dhtstore

import (
	"context"
	"fmt"
	"sort"

	"orchestra/internal/core"
	"orchestra/internal/rpc"
	"orchestra/internal/store"
)

// Network-centric reconciliation (the paper's §5 alternative, implemented
// there only as future work; Figure 3 summarizes the trade-off): instead of
// the reconciling client chasing antecedent chains itself, each
// transaction's controller assembles the transaction extension *in the
// network* by recursively querying the antecedents' controllers, and ships
// the completed extension back. This distributes the reconciliation work
// across many peers at the price of more messages — exactly Figure 3's
// "network-centric + distributed store" cell.

const mTxnExtension = "txn.extension"

// txnExtensionArgs asks a transaction controller for the requester-specific
// extension of its transaction: the unapplied antecedent closure, gathered
// by the controllers themselves.
type txnExtensionArgs struct {
	ID        core.TxnID
	Requester core.PeerID
}

type txnExtensionReply struct {
	Known    bool
	Priority int
	Decision core.Decision
	// Ext is the transaction extension (root included), sorted by global
	// order.
	Ext []*core.Transaction
}

// txnExtension handles mTxnExtension at the controller owning the root
// transaction. It gathers the closure breadth-first: for every antecedent
// it queries that antecedent's controller with a plain txn.get, recursing
// through the antecedents it reports.
func (ns *nodeState) txnExtension(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args txnExtensionArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	ns.mu.Lock()
	tr, ok := ns.txns[args.ID]
	if !ok {
		ns.mu.Unlock()
		return rpc.Encode(&txnExtensionReply{})
	}
	prio := 0
	if trust, okT := ns.cluster.trustOf(args.Requester); okT {
		prio = core.TxnPriority(trust, tr.pub.Txn)
	}
	reply := txnExtensionReply{
		Known:    true,
		Priority: prio,
		Decision: tr.decisions[args.Requester],
		Ext:      []*core.Transaction{tr.pub.Txn},
	}
	pending := append([]core.TxnID(nil), tr.pub.Antecedents...)
	ns.mu.Unlock()

	seen := map[core.TxnID]bool{args.ID: true}
	for len(pending) > 0 {
		aid := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		if seen[aid] {
			continue
		}
		seen[aid] = true
		body, err := rpc.Encode(&txnGetArgs{ID: aid, Requester: args.Requester})
		if err != nil {
			return nil, err
		}
		resp, err := ns.node.RouteString(ctx, txnKey(aid), mTxnGet, body)
		if err != nil {
			return nil, fmt.Errorf("dhtstore: gather antecedent %s: %w", aid, err)
		}
		var ar txnGetReply
		if err := rpc.Decode(resp, &ar); err != nil {
			return nil, err
		}
		if !ar.Known || ar.Decision == core.DecisionAccept {
			continue // already applied by the requester: not part of te
		}
		reply.Ext = append(reply.Ext, ar.Pub.Txn)
		pending = append(pending, ar.Pub.Antecedents...)
	}
	sort.Slice(reply.Ext, func(i, j int) bool { return reply.Ext[i].Order < reply.Ext[j].Order })
	return rpc.Encode(&reply)
}

// NetworkCentric wraps a cluster client so that BeginReconciliation
// delegates extension assembly to the transaction controllers.
type NetworkCentric struct {
	*client
}

// AddNetworkCentricNode joins a node and returns a network-centric store
// client bound to it.
func (c *Cluster) AddNetworkCentricNode(addr string) (store.Store, error) {
	base, err := c.AddNode(addr)
	if err != nil {
		return nil, err
	}
	return &NetworkCentric{client: base.(*client)}, nil
}

// BeginReconciliation implements store.Store: the epoch/stable-epoch
// handshake matches the client-centric path, but every candidate's
// extension is assembled by its controller in the network.
func (nc *NetworkCentric) BeginReconciliation(ctx context.Context, peer core.PeerID) (*store.Reconciliation, error) {
	var meta peerMetaReply
	if err := nc.call(ctx, peerKey(peer), mPeerMeta, &peerMetaArgs{Peer: peer}, &meta); err != nil {
		return nil, err
	}
	var cur allocCurrentReply
	if err := nc.call(ctx, allocKey, mAllocCurrent, &struct{}{}, &cur); err != nil {
		return nil, err
	}
	type epochInfo struct {
		e   core.Epoch
		ids []core.TxnID
	}
	var window []epochInfo
	stable := meta.LastEpoch
	for e := meta.LastEpoch + 1; e <= cur.Epoch; e++ {
		var er epochGetReply
		if err := nc.call(ctx, epochKey(e), mEpochGet, &epochGetArgs{Epoch: e}, &er); err != nil {
			return nil, err
		}
		if !er.Known || !er.Complete {
			break
		}
		stable = e
		window = append(window, epochInfo{e: e, ids: er.IDs})
	}
	var rec peerReconReply
	if err := nc.call(ctx, peerKey(peer), mPeerRecon, &peerReconArgs{Peer: peer, Stable: stable}, &rec); err != nil {
		return nil, err
	}
	out := &store.Reconciliation{Recno: rec.Recno, FromEpoch: rec.FromEpoch, ToEpoch: stable}
	for _, ei := range window {
		for _, id := range ei.ids {
			if id.Origin == peer {
				continue
			}
			var er txnExtensionReply
			if err := nc.call(ctx, txnKey(id), mTxnExtension, &txnExtensionArgs{ID: id, Requester: peer}, &er); err != nil {
				return nil, err
			}
			if !er.Known || er.Priority <= 0 || er.Decision != core.DecisionNone {
				continue
			}
			var root *core.Transaction
			for _, x := range er.Ext {
				if x.ID == id {
					root = x
					break
				}
			}
			if root == nil {
				return nil, fmt.Errorf("dhtstore: controller for %s returned an extension without its root", id)
			}
			out.Candidates = append(out.Candidates, &core.Candidate{
				Txn:      root,
				Priority: er.Priority,
				Ext:      er.Ext,
			})
		}
	}
	sort.Slice(out.Candidates, func(i, j int) bool {
		return out.Candidates[i].Txn.Order < out.Candidates[j].Txn.Order
	})
	return out, nil
}
