package dhtstore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"orchestra/internal/core"
	"orchestra/internal/dht"
	"orchestra/internal/rpc"
	"orchestra/internal/store"
	"orchestra/internal/store/central"
)

// client implements store.Store against the overlay, entering through the
// peer's own DHT node.
type client struct {
	cluster *Cluster
	node    *dht.Node
}

// call routes a request to the owner of key and decodes the reply.
func (cl *client) call(ctx context.Context, key, method string, args, reply any) error {
	body, err := rpc.Encode(args)
	if err != nil {
		return err
	}
	resp, err := cl.node.RouteString(ctx, key, method, body)
	if err != nil {
		return err
	}
	if reply == nil {
		return nil
	}
	return rpc.Decode(resp, reply)
}

// RegisterPeer implements store.Store.
func (cl *client) RegisterPeer(_ context.Context, peer core.PeerID, trust core.Trust) error {
	cl.cluster.setTrust(peer, trust)
	return nil
}

// Publish implements store.Store following Figure 6: request an epoch from
// the allocator (which informs the epoch controller), send each transaction
// to its controller, then publish the transaction IDs to the epoch
// controller, completing the epoch.
func (cl *client) Publish(ctx context.Context, peer core.PeerID, txns []store.PublishedTxn) (core.Epoch, error) {
	if len(txns) == 0 {
		var cur allocCurrentReply
		if err := cl.call(ctx, allocKey, mAllocCurrent, &struct{}{}, &cur); err != nil {
			return 0, err
		}
		return cur.Epoch, nil
	}
	var alloc allocNextReply
	if err := cl.call(ctx, allocKey, mAllocNext, &allocNextArgs{Peer: peer}, &alloc); err != nil {
		return 0, err
	}
	e := alloc.Epoch
	ids := make([]core.TxnID, len(txns))
	for i, pt := range txns {
		pt.Txn.Epoch = e
		pt.Txn.Order = uint64(e)*central.OrderStride + uint64(i)
		ids[i] = pt.Txn.ID
		if err := cl.call(ctx, txnKey(pt.Txn.ID), mTxnPut, &txnPutArgs{Pub: pt, Epoch: e}, nil); err != nil {
			return 0, err
		}
	}
	if err := cl.call(ctx, epochKey(e), mEpochSetTxns, &epochSetTxnsArgs{Epoch: e, Peer: peer, IDs: ids}, nil); err != nil {
		return 0, err
	}
	return e, nil
}

// BeginReconciliation implements store.Store following Figure 7: determine
// the most recent stable epoch from the allocator and the epoch
// controllers, record the reconciliation at the peer coordinator, then
// fetch the relevant transactions from their controllers, chasing
// antecedents through a pending set until it drains.
func (cl *client) BeginReconciliation(ctx context.Context, peer core.PeerID) (*store.Reconciliation, error) {
	var meta peerMetaReply
	if err := cl.call(ctx, peerKey(peer), mPeerMeta, &peerMetaArgs{Peer: peer}, &meta); err != nil {
		return nil, err
	}
	var cur allocCurrentReply
	if err := cl.call(ctx, allocKey, mAllocCurrent, &struct{}{}, &cur); err != nil {
		return nil, err
	}

	// Fetch the contents of every epoch since the last reconciliation and
	// find the most recent stable one.
	type epochInfo struct {
		e   core.Epoch
		ids []core.TxnID
	}
	var window []epochInfo
	stable := meta.LastEpoch
	for e := meta.LastEpoch + 1; e <= cur.Epoch; e++ {
		var er epochGetReply
		if err := cl.call(ctx, epochKey(e), mEpochGet, &epochGetArgs{Epoch: e}, &er); err != nil {
			return nil, err
		}
		if !er.Known || !er.Complete {
			break
		}
		stable = e
		window = append(window, epochInfo{e: e, ids: er.IDs})
	}

	var rec peerReconReply
	if err := cl.call(ctx, peerKey(peer), mPeerRecon, &peerReconArgs{Peer: peer, Stable: stable}, &rec); err != nil {
		return nil, err
	}

	out := &store.Reconciliation{Recno: rec.Recno, FromEpoch: rec.FromEpoch, ToEpoch: stable}

	// Fetch the window's transactions, then chase antecedents: the pending
	// set holds transactions whose controllers have not answered yet.
	fetched := make(map[core.TxnID]*txnGetReply)
	fetch := func(id core.TxnID) (*txnGetReply, error) {
		if r, ok := fetched[id]; ok {
			return r, nil
		}
		var r txnGetReply
		if err := cl.call(ctx, txnKey(id), mTxnGet, &txnGetArgs{ID: id, Requester: peer}, &r); err != nil {
			return nil, err
		}
		fetched[id] = &r
		return &r, nil
	}

	var roots []core.TxnID
	for _, ei := range window {
		for _, id := range ei.ids {
			if id.Origin == peer {
				continue
			}
			r, err := fetch(id)
			if err != nil {
				return nil, err
			}
			if !r.Known || r.Priority <= 0 || r.Decision != core.DecisionNone {
				continue // untrusted or irrelevant
			}
			roots = append(roots, id)
			// Chase this root's unapplied antecedents (Fig. 7).
			pending := append([]core.TxnID(nil), r.Pub.Antecedents...)
			for len(pending) > 0 {
				aid := pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				ar, err := fetch(aid)
				if err != nil {
					return nil, err
				}
				if !ar.Known || ar.Decision == core.DecisionAccept {
					continue // "not relevant": already applied by the peer
				}
				for _, next := range ar.Pub.Antecedents {
					if _, seen := fetched[next]; !seen {
						pending = append(pending, next)
					}
				}
			}
		}
	}

	// Assemble per-root extensions from the fetched closure, mirroring the
	// central store's computation.
	for _, rootID := range roots {
		root := fetched[rootID]
		visited := map[core.TxnID]bool{rootID: true}
		ext := []*core.Transaction{root.Pub.Txn}
		stack := append([]core.TxnID(nil), root.Pub.Antecedents...)
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[id] {
				continue
			}
			visited[id] = true
			r, ok := fetched[id]
			if !ok || !r.Known || r.Decision == core.DecisionAccept {
				continue
			}
			ext = append(ext, r.Pub.Txn)
			stack = append(stack, r.Pub.Antecedents...)
		}
		sort.Slice(ext, func(i, j int) bool { return ext[i].Order < ext[j].Order })
		out.Candidates = append(out.Candidates, &core.Candidate{
			Txn:      root.Pub.Txn,
			Priority: root.Priority,
			Ext:      ext,
		})
	}
	sort.Slice(out.Candidates, func(i, j int) bool {
		return out.Candidates[i].Txn.Order < out.Candidates[j].Txn.Order
	})
	return out, nil
}

// RecordDecisions implements store.Store: the reconciliation algorithm
// notifies the appropriate transaction controllers of accepts and rejects.
func (cl *client) RecordDecisions(ctx context.Context, peer core.PeerID, _ int, accepted, rejected []core.TxnID) error {
	for _, id := range accepted {
		if err := cl.call(ctx, txnKey(id), mTxnDecide,
			&txnDecideArgs{Peer: peer, ID: id, Decision: core.DecisionAccept}, nil); err != nil {
			return fmt.Errorf("dhtstore: record accept %s: %w", id, err)
		}
	}
	for _, id := range rejected {
		if err := cl.call(ctx, txnKey(id), mTxnDecide,
			&txnDecideArgs{Peer: peer, ID: id, Decision: core.DecisionReject}, nil); err != nil {
			return fmt.Errorf("dhtstore: record reject %s: %w", id, err)
		}
	}
	return nil
}

// decidePipelineWidth bounds how many controller messages
// RecordDecisionsBatch keeps in flight at once.
const decidePipelineWidth = 8

// RecordDecisionsBatch implements store.Store. The DHT partitions decision
// state by transaction controller, so the wave's decisions are regrouped
// per transaction: one message per distinct transaction carrying every
// peer's verdict for it — fewer messages than one per (peer, decision)
// whenever several peers decide the same transactions in one wave. The
// controller messages are independent (one transaction's verdicts each),
// so they are pipelined: up to decidePipelineWidth requests in flight
// instead of one latency-bound round trip per controller.
func (cl *client) RecordDecisionsBatch(ctx context.Context, batches []store.DecisionBatch) error {
	grouped := make(map[core.TxnID][]peerDecision)
	var ids []core.TxnID // first-appearance order, for deterministic send starts
	add := func(peer core.PeerID, id core.TxnID, d core.Decision) {
		if _, seen := grouped[id]; !seen {
			ids = append(ids, id)
		}
		grouped[id] = append(grouped[id], peerDecision{Peer: peer, Decision: d})
	}
	for _, b := range batches {
		for _, id := range b.Accepted {
			add(b.Peer, id, core.DecisionAccept)
		}
		for _, id := range b.Rejected {
			add(b.Peer, id, core.DecisionReject)
		}
	}
	width := decidePipelineWidth
	if width > len(ids) {
		width = len(ids)
	}
	if width <= 1 {
		for _, id := range ids {
			args := &txnDecideBatchArgs{ID: id, Decisions: grouped[id]}
			if err := cl.call(ctx, txnKey(id), mTxnDecideN, args, nil); err != nil {
				return fmt.Errorf("dhtstore: record decision batch %s: %w", id, err)
			}
		}
		return nil
	}
	errs := make([]error, len(ids))
	var failed atomic.Bool
	sem := make(chan struct{}, width)
	var wg sync.WaitGroup
	for i, id := range ids {
		// Fail fast: once any controller call has errored, in-flight
		// messages drain but no new ones launch (the old sequential loop
		// aborted at the first error; a wave can carry thousands of
		// controllers, and submitting them all into a dead network would
		// stack timeout rounds).
		if failed.Load() {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, id core.TxnID) {
			defer func() { <-sem; wg.Done() }()
			args := &txnDecideBatchArgs{ID: id, Decisions: grouped[id]}
			if err := cl.call(ctx, txnKey(id), mTxnDecideN, args, nil); err != nil {
				errs[i] = fmt.Errorf("dhtstore: record decision batch %s: %w", id, err)
				failed.Store(true)
			}
		}(i, id)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// CurrentRecno implements store.Store.
func (cl *client) CurrentRecno(ctx context.Context, peer core.PeerID) (int, error) {
	var meta peerMetaReply
	if err := cl.call(ctx, peerKey(peer), mPeerMeta, &peerMetaArgs{Peer: peer}, &meta); err != nil {
		return 0, err
	}
	return meta.Recno, nil
}
