package dhtstore

import (
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/simnet"
	"orchestra/internal/store"
	"orchestra/internal/store/storetest"
)

// netCentricFactory builds peers whose store clients use network-centric
// extension assembly; the full conformance suite must pass unchanged.
func netCentricFactory(t *testing.T, _ *core.Schema) (func(core.PeerID) store.Store, func()) {
	net := simnet.NewVirtual(simnet.DefaultLatency)
	cluster := NewCluster(net)
	clients := make(map[core.PeerID]store.Store)
	return func(p core.PeerID) store.Store {
		if c, ok := clients[p]; ok {
			return c
		}
		c, err := cluster.AddNetworkCentricNode("node-" + string(p))
		if err != nil {
			t.Fatal(err)
		}
		clients[p] = c
		return c
	}, func() {}
}

func TestNetworkCentricConformance(t *testing.T) {
	storetest.RunConformance(t, netCentricFactory)
}

// TestNetworkCentricMatchesClientCentric: both reconciliation modes produce
// identical outcomes; the difference is where the work happens.
func TestNetworkCentricMatchesClientCentric(t *testing.T) {
	schema := storetest.Schema(t)
	run := func(factory storetest.Factory) []core.Tuple {
		clientFor, cleanup := factory(t, schema)
		defer cleanup()
		p1, p2, p3 := buildFig2(t, schema, clientFor)
		_ = p2
		_ = p3
		return p1.Instance().Tuples("F")
	}
	a := run(factory)
	b := run(netCentricFactory)
	if len(a) != len(b) {
		t.Fatalf("modes diverge: %v vs %v", a, b)
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("modes diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// buildFig2 drives the Figure 2 scenario and returns the three peers.
func buildFig2(t *testing.T, schema *core.Schema, clientFor func(core.PeerID) store.Store) (p1, p2, p3 *store.Peer) {
	t.Helper()
	ctx := t.Context()
	var err error
	p1, err = store.NewPeer(ctx, "p1", schema, core.TrustOrigins(map[core.PeerID]int{"p2": 1, "p3": 1}), clientFor("p1"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err = store.NewPeer(ctx, "p2", schema, core.TrustOrigins(map[core.PeerID]int{"p1": 2, "p3": 1}), clientFor("p2"))
	if err != nil {
		t.Fatal(err)
	}
	p3, err = store.NewPeer(ctx, "p3", schema, core.TrustOrigins(map[core.PeerID]int{"p2": 1}), clientFor("p3"))
	if err != nil {
		t.Fatal(err)
	}
	edit := func(p *store.Peer, u core.Update) {
		if _, err := p.Edit(u); err != nil {
			t.Fatal(err)
		}
	}
	cycle := func(p *store.Peer) {
		if _, err := p.PublishAndReconcile(ctx); err != nil {
			t.Fatal(err)
		}
	}
	edit(p3, core.Insert("F", core.Strs("rat", "prot1", "cell-metab"), "p3"))
	edit(p3, core.Modify("F", core.Strs("rat", "prot1", "cell-metab"), core.Strs("rat", "prot1", "immune"), "p3"))
	cycle(p3)
	edit(p2, core.Insert("F", core.Strs("mouse", "prot2", "immune"), "p2"))
	edit(p2, core.Insert("F", core.Strs("rat", "prot1", "cell-resp"), "p2"))
	cycle(p2)
	cycle(p3)
	cycle(p1)
	return p1, p2, p3
}

// TestNetworkCentricShiftsWork: controllers forward more traffic under
// network-centric assembly (the Figure 3 trade-off: work moves into the
// network).
func TestNetworkCentricShiftsWork(t *testing.T) {
	schema := storetest.Schema(t)
	ctx := t.Context()

	traffic := func(networkCentric bool) int64 {
		net := simnet.NewVirtual(simnet.DefaultLatency)
		cluster := NewCluster(net)
		for i := 0; i < 8; i++ {
			if _, err := cluster.AddNode(addrOf(i)); err != nil {
				t.Fatal(err)
			}
		}
		mk := func(id core.PeerID) *store.Peer {
			var cl store.Store
			var err error
			if networkCentric {
				cl, err = cluster.AddNetworkCentricNode("node-" + string(id))
			} else {
				cl, err = cluster.AddNode("node-" + string(id))
			}
			if err != nil {
				t.Fatal(err)
			}
			p, err := store.NewPeer(ctx, id, schema, core.TrustAll(1), cl)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		pa := mk("pa")
		pb := mk("pb")
		// A chain of 6 dependent transactions so extension gathering has
		// depth.
		if _, err := pa.Edit(core.Insert("F", core.Strs("rat", "p1", "v0"), "pa")); err != nil {
			t.Fatal(err)
		}
		if _, err := pa.PublishAndReconcile(ctx); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < 6; i++ {
			if _, err := pa.Edit(core.Modify("F",
				core.Strs("rat", "p1", verOf(i-1)), core.Strs("rat", "p1", verOf(i)), "pa")); err != nil {
				t.Fatal(err)
			}
			if _, err := pa.PublishAndReconcile(ctx); err != nil {
				t.Fatal(err)
			}
		}
		net.Stats().Reset()
		if _, err := pb.PublishAndReconcile(ctx); err != nil {
			t.Fatal(err)
		}
		return net.Stats().Messages()
	}

	cc := traffic(false)
	ncTraffic := traffic(true)
	if cc <= 0 || ncTraffic <= 0 {
		t.Fatalf("no traffic measured: cc=%d nc=%d", cc, ncTraffic)
	}
	// Network-centric gathering re-fetches shared antecedents per root, so
	// it must generate at least as much traffic.
	if ncTraffic < cc {
		t.Errorf("network-centric traffic %d unexpectedly below client-centric %d", ncTraffic, cc)
	}
}

func addrOf(i int) string { return "storage-" + string(rune('a'+i)) }

func verOf(i int) string { return "v" + string(rune('0'+i)) }
