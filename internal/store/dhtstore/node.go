package dhtstore

import (
	"context"
	"fmt"
	"sync"

	"orchestra/internal/core"
	"orchestra/internal/dht"
	"orchestra/internal/rpc"
	"orchestra/internal/simnet"
	"orchestra/internal/store"
)

// Cluster owns the overlay and the shared trust-policy registry; CDSS peers
// join it as DHT nodes and obtain store.Store clients bound to their node.
type Cluster struct {
	net  *simnet.Network
	ring *dht.Ring

	mu       sync.RWMutex
	policies map[core.PeerID]core.Trust
}

// NewCluster returns an empty cluster on the fabric.
func NewCluster(net *simnet.Network) *Cluster {
	return &Cluster{net: net, ring: dht.NewRing(net), policies: make(map[core.PeerID]core.Trust)}
}

// Ring exposes the overlay (for tests and diagnostics).
func (c *Cluster) Ring() *dht.Ring { return c.ring }

// AddNode joins a storage node at addr and returns the store client bound
// to it. In an Orchestra confederation every participant runs a node, so
// its client routes from its own node.
func (c *Cluster) AddNode(addr string) (store.Store, error) {
	ns := &nodeState{
		cluster: c,
		epochs:  make(map[core.Epoch]*epochRec),
		txns:    make(map[core.TxnID]*txnRec),
		coords:  make(map[core.PeerID]*coordRec),
	}
	node, err := c.ring.Join(addr, ns.mux())
	if err != nil {
		return nil, err
	}
	ns.node = node
	return &client{cluster: c, node: node}, nil
}

func (c *Cluster) trustOf(peer core.PeerID) (core.Trust, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.policies[peer]
	return t, ok
}

func (c *Cluster) setTrust(peer core.PeerID, t core.Trust) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policies[peer] = t
}

// epochRec is the state held by an epoch controller.
type epochRec struct {
	peer     core.PeerID
	ids      []core.TxnID
	complete bool
}

// txnRec is the state held by a transaction controller.
type txnRec struct {
	pub       store.PublishedTxn
	epoch     core.Epoch
	decisions map[core.PeerID]core.Decision
}

// coordRec is the state held by a peer coordinator.
type coordRec struct {
	recno     int
	lastEpoch core.Epoch
}

// nodeState is one node's application state: it plays every role — epoch
// allocator, epoch controller, transaction controller, peer coordinator —
// for the keys it owns.
type nodeState struct {
	cluster *Cluster
	node    *dht.Node

	mu      sync.Mutex
	counter core.Epoch
	epochs  map[core.Epoch]*epochRec
	txns    map[core.TxnID]*txnRec
	coords  map[core.PeerID]*coordRec
}

func (ns *nodeState) mux() rpc.Handler {
	m := rpc.NewMux()
	m.Handle(mAllocNext, ns.allocNext)
	m.Handle(mAllocCurrent, ns.allocCurrent)
	m.Handle(mEpochBegin, ns.epochBegin)
	m.Handle(mEpochSetTxns, ns.epochSetTxns)
	m.Handle(mEpochGet, ns.epochGet)
	m.Handle(mTxnPut, ns.txnPut)
	m.Handle(mTxnGet, ns.txnGet)
	m.Handle(mTxnExtension, ns.txnExtension)
	m.Handle(mTxnDecide, ns.txnDecide)
	m.Handle(mTxnDecideN, ns.txnDecideBatch)
	m.Handle(mPeerRecon, ns.peerRecon)
	m.Handle(mPeerMeta, ns.peerMeta)
	return m
}

// allocNext implements the epoch allocator: it increments the counter,
// informs the new epoch's controller that the peer is publishing, and
// replies with the epoch (Fig. 6 messages 2-4). Were this node to fail, the
// counter could be reconstructed by polling for the largest epoch present.
func (ns *nodeState) allocNext(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args allocNextArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	ns.mu.Lock()
	ns.counter++
	e := ns.counter
	ns.mu.Unlock()
	body, err := rpc.Encode(&epochBeginArgs{Epoch: e, Peer: args.Peer})
	if err != nil {
		return nil, err
	}
	if _, err := ns.node.RouteString(ctx, epochKey(e), mEpochBegin, body); err != nil {
		return nil, fmt.Errorf("dhtstore: inform epoch controller: %w", err)
	}
	return rpc.Encode(&allocNextReply{Epoch: e})
}

func (ns *nodeState) allocCurrent(context.Context, rpc.Request) ([]byte, error) {
	ns.mu.Lock()
	e := ns.counter
	ns.mu.Unlock()
	return rpc.Encode(&allocCurrentReply{Epoch: e})
}

func (ns *nodeState) epochBegin(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args epochBeginArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if _, dup := ns.epochs[args.Epoch]; dup {
		return nil, fmt.Errorf("dhtstore: epoch %d already begun", args.Epoch)
	}
	ns.epochs[args.Epoch] = &epochRec{peer: args.Peer}
	return rpc.Encode(&struct{}{})
}

func (ns *nodeState) epochSetTxns(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args epochSetTxnsArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	er, ok := ns.epochs[args.Epoch]
	if !ok || er.peer != args.Peer {
		return nil, fmt.Errorf("dhtstore: epoch %d not open for %s", args.Epoch, args.Peer)
	}
	if er.complete {
		return nil, fmt.Errorf("dhtstore: epoch %d already complete", args.Epoch)
	}
	er.ids = args.IDs
	er.complete = true
	return rpc.Encode(&struct{}{})
}

func (ns *nodeState) epochGet(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args epochGetArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	er, ok := ns.epochs[args.Epoch]
	if !ok {
		return rpc.Encode(&epochGetReply{})
	}
	return rpc.Encode(&epochGetReply{Known: true, Peer: er.peer, IDs: er.ids, Complete: er.complete})
}

func (ns *nodeState) txnPut(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args txnPutArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	id := args.Pub.Txn.ID
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if _, dup := ns.txns[id]; dup {
		return nil, fmt.Errorf("dhtstore: transaction %s already published", id)
	}
	ns.txns[id] = &txnRec{
		pub:   args.Pub,
		epoch: args.Epoch,
		decisions: map[core.PeerID]core.Decision{
			id.Origin: core.DecisionAccept,
		},
	}
	return rpc.Encode(&struct{}{})
}

func (ns *nodeState) txnGet(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args txnGetArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	tr, ok := ns.txns[args.ID]
	if !ok {
		return rpc.Encode(&txnGetReply{})
	}
	prio := 0
	if trust, ok := ns.cluster.trustOf(args.Requester); ok {
		prio = core.TxnPriority(trust, tr.pub.Txn)
	}
	return rpc.Encode(&txnGetReply{
		Known:    true,
		Pub:      tr.pub,
		Priority: prio,
		Decision: tr.decisions[args.Requester],
	})
}

func (ns *nodeState) txnDecide(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args txnDecideArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	tr, ok := ns.txns[args.ID]
	if !ok {
		return nil, fmt.Errorf("dhtstore: decision for unknown transaction %s", args.ID)
	}
	tr.decisions[args.Peer] = args.Decision
	return rpc.Encode(&struct{}{})
}

// txnDecideBatch applies a whole wave's decisions for one transaction.
func (ns *nodeState) txnDecideBatch(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args txnDecideBatchArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	tr, ok := ns.txns[args.ID]
	if !ok {
		return nil, fmt.Errorf("dhtstore: decision for unknown transaction %s", args.ID)
	}
	for _, d := range args.Decisions {
		tr.decisions[d.Peer] = d.Decision
	}
	return rpc.Encode(&struct{}{})
}

func (ns *nodeState) peerRecon(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args peerReconArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	cr := ns.coords[args.Peer]
	if cr == nil {
		cr = &coordRec{}
		ns.coords[args.Peer] = cr
	}
	from := cr.lastEpoch
	stable := args.Stable
	if stable < from {
		stable = from
	}
	cr.recno++
	cr.lastEpoch = stable
	return rpc.Encode(&peerReconReply{Recno: cr.recno, FromEpoch: from})
}

func (ns *nodeState) peerMeta(ctx context.Context, req rpc.Request) ([]byte, error) {
	var args peerMetaArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	cr := ns.coords[args.Peer]
	if cr == nil {
		return rpc.Encode(&peerMetaReply{})
	}
	return rpc.Encode(&peerMetaReply{Recno: cr.recno, LastEpoch: cr.lastEpoch})
}

// Ensure simnet is linked for the package doc reference.
var _ = simnet.DefaultLatency
