package dhtstore

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/simnet"
	"orchestra/internal/store"
	"orchestra/internal/store/central"
	"orchestra/internal/store/storetest"
)

// factory joins one DHT node per peer lazily: each peer's store client is
// backed by its own overlay node, as in an Orchestra confederation.
func factory(t *testing.T, _ *core.Schema) (func(core.PeerID) store.Store, func()) {
	net := simnet.NewVirtual(simnet.DefaultLatency)
	cluster := NewCluster(net)
	clients := make(map[core.PeerID]store.Store)
	return func(p core.PeerID) store.Store {
		if c, ok := clients[p]; ok {
			return c
		}
		c, err := cluster.AddNode("node-" + string(p))
		if err != nil {
			t.Fatal(err)
		}
		clients[p] = c
		return c
	}, func() {}
}

func TestConformance(t *testing.T) {
	storetest.RunConformance(t, factory)
}

// TestWatchConformance documents that the DHT store degrades cleanly: it
// has no watch capability, so every leg of the suite skips via the probe
// (and the streaming reconcile loop falls back to polling against it).
func TestWatchConformance(t *testing.T) {
	storetest.RunWatchConformance(t, factory)
}

// TestMultiGroupConformance documents that the DHT store has no
// multi-group tenancy: the capability probe answers no and the whole
// suite skips.
func TestMultiGroupConformance(t *testing.T) {
	storetest.RunMultiGroupConformance(t, factory, nil)
}

// TestMessageAccounting: the DHT store generates per-transaction request
// traffic, and reconciliation traffic grows with the number of transactions
// retrieved (the effect behind Figures 10 and 12).
func TestMessageAccounting(t *testing.T) {
	net := simnet.NewVirtual(simnet.DefaultLatency)
	cluster := NewCluster(net)
	schema := storetest.Schema(t)
	ctx := context.Background()

	// Extra storage-only nodes so that most keys are owned remotely.
	for i := 0; i < 8; i++ {
		if _, err := cluster.AddNode(fmt.Sprintf("storage-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(id core.PeerID) *store.Peer {
		cl, err := cluster.AddNode("node-" + string(id))
		if err != nil {
			t.Fatal(err)
		}
		p, err := store.NewPeer(ctx, id, schema, core.TrustAll(1), cl)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	pa := mk("pa")
	pb := mk("pb")

	for i := 0; i < 10; i++ {
		if _, err := pa.Edit(core.Insert("F", core.Strs("org", fmt.Sprintf("prot%d", i), "fn"), "pa")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pa.PublishAndReconcile(ctx); err != nil {
		t.Fatal(err)
	}

	net.Stats().Reset()
	res, err := pb.PublishAndReconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 10 {
		t.Fatalf("accepted %d", len(res.Accepted))
	}
	msgs := net.Stats().Messages()
	// At minimum: one txn.get and one txn.decide per transaction, plus
	// epoch/allocator/coordinator traffic.
	if msgs < 40 {
		t.Errorf("messages = %d, expected per-transaction request traffic", msgs)
	}
	if net.VirtualLatency() <= 0 {
		t.Error("latency not charged")
	}
}

// TestEquivalenceWithCentralStore drives an identical randomized workload
// through the central store and the DHT store and requires identical final
// instances and decision sets at every peer — the two implementations
// realize the same §5.2 contract.
func TestEquivalenceWithCentralStore(t *testing.T) {
	schema := storetest.Schema(t)
	const peers = 5
	const rounds = 8

	type world struct {
		peers []*store.Peer
	}
	build := func(clientFor func(core.PeerID) store.Store) *world {
		ctx := context.Background()
		w := &world{}
		for i := 0; i < peers; i++ {
			id := core.PeerID(fmt.Sprintf("p%d", i))
			p, err := store.NewPeer(ctx, id, schema, core.TrustAll(1), clientFor(id))
			if err != nil {
				t.Fatal(err)
			}
			w.peers = append(w.peers, p)
		}
		return w
	}

	run := func(w *world, seed int64) {
		ctx := context.Background()
		r := rand.New(rand.NewSource(seed))
		orgs := []string{"rat", "mouse", "dog"}
		fns := []string{"a", "b", "c", "d"}
		for round := 0; round < rounds; round++ {
			p := w.peers[round%peers]
			// A couple of edits: inserts or modifications of existing keys.
			for k := 0; k < 2; k++ {
				org := orgs[r.Intn(len(orgs))]
				prot := fmt.Sprintf("prot%d", r.Intn(4))
				fn := fns[r.Intn(len(fns))]
				key := core.Strs(org, prot)
				if cur, ok := p.Instance().Lookup("F", key); ok {
					if _, err := p.Edit(core.Modify("F", cur, core.Strs(org, prot, fn), p.ID())); err != nil {
						continue // identity modify etc.: skip
					}
				} else {
					if _, err := p.Edit(core.Insert("F", core.Strs(org, prot, fn), p.ID())); err != nil {
						t.Fatal(err)
					}
				}
			}
			if _, err := p.PublishAndReconcile(ctx); err != nil {
				t.Fatal(err)
			}
		}
		// A final reconcile round for everyone.
		for _, p := range w.peers {
			if _, err := p.PublishAndReconcile(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}

	for seed := int64(1); seed <= 5; seed++ {
		cs := central.MustOpenMemory(schema)
		wc := build(func(core.PeerID) store.Store { return cs })
		run(wc, seed)

		clientFor, _ := factory(t, schema)
		wd := build(clientFor)
		run(wd, seed)

		for i := range wc.peers {
			pc, pd := wc.peers[i], wd.peers[i]
			if !pc.Instance().Equal(pd.Instance()) {
				t.Fatalf("seed %d: peer %s instances diverge:\ncentral: %v\ndht:     %v",
					seed, pc.ID(), pc.Instance().Tuples("F"), pd.Instance().Tuples("F"))
			}
			dc := core.NewTxnSet(pc.Engine().DeferredIDs()...)
			dd := core.NewTxnSet(pd.Engine().DeferredIDs()...)
			if len(dc) != len(dd) {
				t.Fatalf("seed %d: peer %s deferred sets diverge: %v vs %v",
					seed, pc.ID(), pc.Engine().DeferredIDs(), pd.Engine().DeferredIDs())
			}
			for id := range dc {
				if !dd.Has(id) {
					t.Fatalf("seed %d: peer %s: %s deferred only under central", seed, pc.ID(), id)
				}
			}
		}
		cs.Close()
	}
}

// TestAllocatorInformsController: the publish protocol of Figure 6 leaves
// the epoch controller knowing about an epoch before its transactions
// arrive, so an incomplete epoch is observable.
func TestAllocatorInformsController(t *testing.T) {
	net := simnet.NewVirtual(simnet.DefaultLatency)
	cluster := NewCluster(net)
	schema := storetest.Schema(t)
	ctx := context.Background()
	var clients []store.Store
	for i := 0; i < 4; i++ {
		cl, err := cluster.AddNode(fmt.Sprintf("node-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, cl)
	}
	pa, err := store.NewPeer(ctx, "pa", schema, core.TrustAll(1), clients[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pa.Edit(core.Insert("F", core.Strs("rat", "p1", "v"), "pa")); err != nil {
		t.Fatal(err)
	}
	if _, err := pa.Publish(ctx); err != nil {
		t.Fatal(err)
	}
	// The epoch controller for epoch 1 must know it and see it complete.
	cl := clients[1].(*client)
	var er epochGetReply
	if err := cl.call(ctx, epochKey(1), mEpochGet, &epochGetArgs{Epoch: 1}, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Known || !er.Complete || len(er.IDs) != 1 || er.Peer != "pa" {
		t.Errorf("epoch record = %+v", er)
	}
	// An unknown epoch reports unknown (decode into a fresh struct: gob
	// omits zero fields).
	var unknown epochGetReply
	if err := cl.call(ctx, epochKey(99), mEpochGet, &epochGetArgs{Epoch: 99}, &unknown); err != nil {
		t.Fatal(err)
	}
	if unknown.Known {
		t.Error("epoch 99 should be unknown")
	}
}

// TestWorkDistribution: storage responsibilities spread across the ring.
func TestWorkDistribution(t *testing.T) {
	net := simnet.NewVirtual(simnet.DefaultLatency)
	cluster := NewCluster(net)
	schema := storetest.Schema(t)
	ctx := context.Background()
	const n = 10
	peersList := make([]*store.Peer, n)
	for i := 0; i < n; i++ {
		id := core.PeerID(fmt.Sprintf("p%02d", i))
		cl, err := cluster.AddNode("node-" + string(id))
		if err != nil {
			t.Fatal(err)
		}
		peersList[i], err = store.NewPeer(ctx, id, schema, core.TrustAll(1), cl)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range peersList {
		for j := 0; j < 5; j++ {
			if _, err := p.Edit(core.Insert("F", core.Strs(fmt.Sprintf("org%d", i), fmt.Sprintf("prot%d", j), "fn"), p.ID())); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := p.PublishAndReconcile(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Count how many ring nodes delivered at least one message as owner:
	// with 50 transactions, 10 epochs, 10 coordinators and the allocator,
	// responsibility must not be concentrated on one node.
	owners := 0
	for _, nd := range cluster.Ring().Nodes() {
		if nd.Delivered() > 0 {
			owners++
		}
	}
	if owners < n/2 {
		t.Errorf("only %d of %d nodes own any state", owners, n)
	}
}
