package dhtstore

import (
	"context"
	"fmt"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/simnet"
	"orchestra/internal/store"
	"orchestra/internal/store/storetest"
)

// TestPartitionFailsThenHeals: a partitioned fabric makes store operations
// fail cleanly (no corruption), and after healing the peer completes the
// same work.
func TestPartitionFailsThenHeals(t *testing.T) {
	net := simnet.NewVirtual(simnet.DefaultLatency)
	cluster := NewCluster(net)
	schema := storetest.Schema(t)
	ctx := context.Background()

	var clients []store.Store
	for i := 0; i < 6; i++ {
		cl, err := cluster.AddNode(fmt.Sprintf("node-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, cl)
	}
	pa, err := store.NewPeer(ctx, "pa", schema, core.TrustAll(1), clients[0])
	if err != nil {
		t.Fatal(err)
	}
	pb, err := store.NewPeer(ctx, "pb", schema, core.TrustAll(1), clients[1])
	if err != nil {
		t.Fatal(err)
	}

	if _, err := pa.Edit(core.Insert("F", core.Strs("rat", "p1", "v"), "pa")); err != nil {
		t.Fatal(err)
	}
	if _, err := pa.PublishAndReconcile(ctx); err != nil {
		t.Fatal(err)
	}

	// Partition pb's node: its reconciliation must fail with an error.
	net.Partition("node-1")
	if _, err := pb.Reconcile(ctx); err == nil {
		t.Fatal("reconciliation through a partitioned node should fail")
	}
	net.Heal("node-1")

	res, err := pb.Reconcile(ctx)
	if err != nil {
		t.Fatalf("after heal: %v", err)
	}
	if len(res.Accepted) != 1 {
		t.Fatalf("after heal accepted %v", res.Accepted)
	}
	if pb.Instance().Len("F") != 1 {
		t.Errorf("pb instance: %v", pb.Instance().Tuples("F"))
	}
}

// TestPartitionedOwnerBlocksPublish: when the node owning the epoch
// allocator key is partitioned, publishes fail; the publisher's pending
// transactions survive for a later retry.
func TestPartitionedOwnerBlocksPublish(t *testing.T) {
	net := simnet.NewVirtual(simnet.DefaultLatency)
	cluster := NewCluster(net)
	schema := storetest.Schema(t)
	ctx := context.Background()

	var addrs []string
	for i := 0; i < 6; i++ {
		addr := fmt.Sprintf("node-%d", i)
		addrs = append(addrs, addr)
		if _, err := cluster.AddNode(addr); err != nil {
			t.Fatal(err)
		}
	}
	// The peer's own client node must not be the allocator owner for this
	// test; find the owner and use a different node's client.
	owner := cluster.Ring().OwnerOfString(allocKey).Addr()
	var entry string
	for _, a := range addrs {
		if a != owner {
			entry = a
			break
		}
	}
	cl, ok := cluster.Ring().Node(entry)
	if !ok {
		t.Fatal("entry node missing")
	}
	_ = cl
	clientNode, err := cluster.AddNode("node-peer")
	if err != nil {
		t.Fatal(err)
	}
	// Adding a node may change ownership; recompute and partition the
	// current allocator owner (if it is the peer's node itself, skip).
	owner = cluster.Ring().OwnerOfString(allocKey).Addr()
	if owner == "node-peer" {
		t.Skip("allocator landed on the peer's own node; direct delivery bypasses the fabric")
	}

	pa, err := store.NewPeer(ctx, "pa", schema, core.TrustAll(1), clientNode)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pa.Edit(core.Insert("F", core.Strs("rat", "p1", "v"), "pa")); err != nil {
		t.Fatal(err)
	}

	net.Partition(owner)
	if _, err := pa.Publish(ctx); err == nil {
		t.Fatal("publish should fail while the allocator owner is partitioned")
	}
	if pa.PendingCount() != 1 {
		t.Fatalf("pending lost on failed publish: %d", pa.PendingCount())
	}
	net.Heal(owner)
	if _, err := pa.Publish(ctx); err != nil {
		t.Fatalf("publish after heal: %v", err)
	}
	if pa.PendingCount() != 0 {
		t.Error("pending not drained after successful publish")
	}
}
