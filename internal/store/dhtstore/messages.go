// Package dhtstore implements the distributed update store of §5.2.2 on the
// Pastry-style overlay of internal/dht. Work — both storage and computation
// — is spread over the entire network of peers, using transaction
// identifiers and epochs as keys:
//
//   - the owner of the well-known key "epochalloc" is the epoch allocator;
//   - the owner of "epoch:<e>" is epoch e's controller, tracking which peer
//     publishes it, its transaction IDs, and whether it is complete;
//   - the owner of "txn:<origin>:<seq>" is that transaction's controller,
//     holding the transaction, its antecedent set, and per-peer decisions;
//   - the owner of "peer:<id>" is the peer's coordinator, recording its
//     reconciliation numbers and epochs.
//
// Publishing follows Figure 6 (request epoch → begin epoch → publish
// transaction IDs → mark complete); reconciliation retrieval follows
// Figure 7: the reconciling peer requests each relevant transaction from
// its controller, which replies with the transaction, its priority, and its
// antecedents — or that it is irrelevant (already applied) — and the peer
// chases antecedents until its pending set drains.
//
// Like the paper's prototype, message delivery is assumed reliable and
// fault tolerance is out of scope. Trust policies are held in a
// cluster-wide registry shared by all controllers (the paper's transaction
// controllers likewise evaluate requester trust; predicate code is not
// serializable, so the registry stands in for policy distribution).
package dhtstore

import (
	"orchestra/internal/core"
	"orchestra/internal/store"
)

// Method names.
const (
	mAllocNext    = "alloc.next"
	mAllocCurrent = "alloc.current"
	mEpochBegin   = "epoch.begin"
	mEpochSetTxns = "epoch.settxns"
	mEpochGet     = "epoch.get"
	mTxnPut       = "txn.put"
	mTxnGet       = "txn.get"
	mTxnDecide    = "txn.decide"
	mTxnDecideN   = "txn.decide.batch"
	mPeerRecon    = "peer.recon"
	mPeerMeta     = "peer.meta"
)

// Routing keys.
const allocKey = "epochalloc"

func epochKey(e core.Epoch) string { return "epoch:" + itoa(int64(e)) }

func txnKey(id core.TxnID) string { return "txn:" + string(id.Origin) + ":" + utoa(id.Seq) }

func peerKey(p core.PeerID) string { return "peer:" + string(p) }

func itoa(v int64) string { return string(appendInt(nil, v)) }

func utoa(v uint64) string { return string(appendUint(nil, v)) }

func appendInt(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	return appendUint(b, uint64(v))
}

func appendUint(b []byte, v uint64) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

// allocNextArgs requests a fresh epoch for a publishing peer (Fig. 6
// message 1); the allocator informs the epoch controller (messages 2-3)
// before replying (message 4).
type allocNextArgs struct {
	Peer core.PeerID
}

type allocNextReply struct {
	Epoch core.Epoch
}

type allocCurrentReply struct {
	Epoch core.Epoch
}

type epochBeginArgs struct {
	Epoch core.Epoch
	Peer  core.PeerID
}

// epochSetTxnsArgs publishes an epoch's transaction IDs (Fig. 6 message 5)
// and marks it complete (message 6).
type epochSetTxnsArgs struct {
	Epoch core.Epoch
	Peer  core.PeerID
	IDs   []core.TxnID
}

type epochGetArgs struct {
	Epoch core.Epoch
}

type epochGetReply struct {
	Known    bool
	Peer     core.PeerID
	IDs      []core.TxnID
	Complete bool
}

type txnPutArgs struct {
	Pub   store.PublishedTxn
	Epoch core.Epoch
}

// txnGetArgs requests a transaction for reconciliation (Fig. 7): the reply
// carries the transaction, the requester's priority for it, its antecedent
// set, and the requester's prior decision, letting the client skip
// irrelevant (already applied) chains.
type txnGetArgs struct {
	ID        core.TxnID
	Requester core.PeerID
}

type txnGetReply struct {
	Known    bool
	Pub      store.PublishedTxn
	Priority int
	Decision core.Decision
}

type txnDecideArgs struct {
	Peer     core.PeerID
	ID       core.TxnID
	Decision core.Decision
}

// peerDecision is one peer's verdict inside a batched decide message.
type peerDecision struct {
	Peer     core.PeerID
	Decision core.Decision
}

// txnDecideBatchArgs carries every peer's decision for one transaction to
// its controller in a single message: the DHT partitions decision state by
// controller, so batching regroups a reconcile wave's outcomes per
// transaction rather than per peer.
type txnDecideBatchArgs struct {
	ID        core.TxnID
	Decisions []peerDecision
}

// peerReconArgs records a reconciliation at the peer's coordinator; the
// client has already determined the stable epoch.
type peerReconArgs struct {
	Peer   core.PeerID
	Stable core.Epoch
}

type peerReconReply struct {
	Recno     int
	FromEpoch core.Epoch
}

type peerMetaArgs struct {
	Peer core.PeerID
}

type peerMetaReply struct {
	Recno     int
	LastEpoch core.Epoch
}
