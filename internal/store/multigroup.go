package store

import "context"

// Multi-group (tenant) capability probe. Grouping is an open-time concern
// — a multi-tenant backend opens one namespaced store per group — so the
// probe does not change the Store interface; it only reports whether the
// backend family behind this store can host multiple groups (the central
// store's shared-database tenancy, proxied over the remote transport). The
// DHT store cannot, and the multi-group conformance suite skips it.
type MultiGroupProber interface {
	CanMultiGroup(ctx context.Context) bool
}

// CanMultiGroup reports whether the store's backend supports multi-group
// tenancy, asking a MultiGroupProber if the store is one (a proxy knows
// better than its static type) and defaulting to no.
func CanMultiGroup(ctx context.Context, st Store) bool {
	if p, ok := st.(MultiGroupProber); ok {
		return p.CanMultiGroup(ctx)
	}
	return false
}
