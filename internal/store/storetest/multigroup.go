package storetest

import (
	"context"
	"fmt"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/store"
)

// MultiGroupFactory builds a fresh multi-group harness for a schema: a
// store client scoped to one group for one peer, plus a cleanup. All
// groups share the harness's backend (one node, one database, one
// transport), which is exactly what the suite stresses.
type MultiGroupFactory func(t *testing.T, schema *core.Schema) (clientFor func(group string, peer core.PeerID) store.Store, cleanup func())

// RunMultiGroupConformance runs the multi-group tenancy suite. The plain
// factory is probed first (store.CanMultiGroup): a backend family without
// multi-group support — the DHT store — skips the whole suite, and then a
// nil mg is fine. A backend that claims the capability must supply a
// harness.
func RunMultiGroupConformance(t *testing.T, factory Factory, mg MultiGroupFactory) {
	clientFor, cleanup := factory(t, Schema(t))
	can := store.CanMultiGroup(context.Background(), clientFor("probe"))
	cleanup()
	if !can {
		t.Skip("backend has no multi-group capability")
	}
	if mg == nil {
		t.Fatal("backend reports multi-group capability but no MultiGroupFactory was supplied")
	}
	t.Run("GroupIsolation", func(t *testing.T) { testMultiGroupIsolation(t, mg) })
	t.Run("FrontierIndependence", func(t *testing.T) { testMultiGroupFrontiers(t, mg) })
	t.Run("HostileIdentifiers", func(t *testing.T) { testMultiGroupIdentifiers(t, mg) })
}

// groupPeer builds a reconciling peer against one group's store.
func groupPeer(t *testing.T, mgClient func(string, core.PeerID) store.Store, group string, id core.PeerID) *store.Peer {
	t.Helper()
	p, err := store.NewPeer(context.Background(), id, Schema(t), TrustAll(1), mgClient(group, id))
	if err != nil {
		t.Fatalf("group %q peer %s: %v", group, id, err)
	}
	return p
}

// testMultiGroupIsolation: co-hosted groups with identical schemas and
// identical peer IDs never see each other's transactions — each group's
// reconcilers import exactly their own group's rows.
func testMultiGroupIsolation(t *testing.T, mg MultiGroupFactory) {
	clientFor, cleanup := mg(t, Schema(t))
	defer cleanup()

	groups := []string{"alpha", "beta", "gamma"}
	pubs := make(map[string]*store.Peer)
	subs := make(map[string]*store.Peer)
	for _, g := range groups {
		pubs[g] = groupPeer(t, clientFor, g, "alice")
		subs[g] = groupPeer(t, clientFor, g, "bob")
	}
	// Interleave the groups' publishes so their commits overlap in the
	// shared backend.
	for i := 0; i < 3; i++ {
		for _, g := range groups {
			mustEdit(t, pubs[g], core.Insert("F",
				core.Strs(g, fmt.Sprintf("prot%d", i), "fn-"+g), "alice"))
			mustCycle(t, pubs[g])
		}
	}
	for _, g := range groups {
		res := mustCycle(t, subs[g])
		if len(res.Accepted) != 3 {
			t.Fatalf("group %q: bob accepted %d txns, want 3", g, len(res.Accepted))
		}
		for _, tup := range subs[g].Instance().Tuples("F") {
			if tup[0].String() != g {
				t.Fatalf("group %q: bob imported foreign tuple %v", g, tup)
			}
		}
		if n := subs[g].Instance().Len("F"); n != 3 {
			t.Fatalf("group %q: bob has %d rows, want 3", g, n)
		}
	}
}

// testMultiGroupFrontiers: epoch numbering and reconciliation frontiers
// are per-group — one group's publishes never advance (or stall) a
// co-hosted group's stable frontier or recnos.
func testMultiGroupFrontiers(t *testing.T, mg MultiGroupFactory) {
	clientFor, cleanup := mg(t, Schema(t))
	defer cleanup()
	ctx := context.Background()

	busyPub := groupPeer(t, clientFor, "busy", "alice")
	busySub := groupPeer(t, clientFor, "busy", "bob")
	groupPeer(t, clientFor, "idle", "bob") // registers idle bob

	for i := 0; i < 5; i++ {
		mustEdit(t, busyPub, core.Insert("F",
			core.Strs("rat", fmt.Sprintf("p%d", i), "fn"), "alice"))
		mustCycle(t, busyPub)
	}
	// The idle group's window is empty and its epochs untouched by the
	// busy group's five.
	idleStore := clientFor("idle", "bob")
	rec, err := idleStore.BeginReconciliation(ctx, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if rec.ToEpoch != 0 || len(rec.Candidates) != 0 {
		t.Fatalf("idle group window = (%d, %d] with %d candidates, want empty at epoch 0",
			rec.FromEpoch, rec.ToEpoch, len(rec.Candidates))
	}
	if err := idleStore.RecordDecisions(ctx, "bob", rec.Recno, nil, nil); err != nil {
		t.Fatal(err)
	}
	// The busy group's frontier is exactly its own five epochs.
	res := mustCycle(t, busySub)
	if len(res.Accepted) != 5 {
		t.Fatalf("busy group: bob applied %d, want 5", len(res.Accepted))
	}
	mustCycle(t, busySub)
	// Recnos advanced independently: busy bob reconciled twice, idle bob
	// once — same peer ID, separate per-group counters.
	busyRecno, err := clientFor("busy", "bob").CurrentRecno(ctx, "bob")
	if err != nil {
		t.Fatal(err)
	}
	idleRecno, err := idleStore.CurrentRecno(ctx, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if busyRecno != 2 || idleRecno != 1 {
		t.Fatalf("recnos not independent: busy=%d idle=%d, want 2 and 1", busyRecno, idleRecno)
	}
}

// testMultiGroupIdentifiers: group IDs that are hostile as table or
// method names (separators, spaces, non-ASCII, the escape character
// itself) route, create, and isolate correctly.
func testMultiGroupIdentifiers(t *testing.T, mg MultiGroupFactory) {
	clientFor, cleanup := mg(t, Schema(t))
	defer cleanup()

	groups := []string{"a_b", "a b", "über/group", "g_00", "UPPER.lower-dash"}
	for i, g := range groups {
		pub := groupPeer(t, clientFor, g, "alice")
		mustEdit(t, pub, core.Insert("F",
			core.Strs(fmt.Sprintf("org%d", i), "prot", "fn"), "alice"))
		mustCycle(t, pub)
	}
	for i, g := range groups {
		sub := groupPeer(t, clientFor, g, "bob")
		res := mustCycle(t, sub)
		if len(res.Accepted) != 1 {
			t.Fatalf("group %q: applied %d, want 1", g, len(res.Accepted))
		}
		tup := sub.Instance().Tuples("F")
		if len(tup) != 1 || tup[0][0].String() != fmt.Sprintf("org%d", i) {
			t.Fatalf("group %q: wrong instance %v", g, tup)
		}
	}
}
