package storetest

import (
	"context"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/store"
	"orchestra/internal/trust"
)

// testTrustUpdate pins the mid-stream trust-change contract: a
// re-registered textual policy takes effect at the peer's next
// reconciliation window, a delegating policy resolves through the store's
// trust graph, and a delegation to an unregistered peer is refused without
// clobbering the active policy.
func testTrustUpdate(t *testing.T, factory Factory) {
	s := Schema(t)
	clientFor, cleanup := factory(t, s)
	defer cleanup()
	ctx := context.Background()

	pa, err := store.NewPeer(ctx, "pa", s, TrustAll(1), clientFor("pa"))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := store.NewPeer(ctx, "pb", s, TrustAll(1), clientFor("pb"))
	if err != nil {
		t.Fatal(err)
	}
	pq, err := store.NewPeer(ctx, "pq", s, TrustOrigins(map[core.PeerID]int{"pa": 1}), clientFor("pq"))
	if err != nil {
		t.Fatal(err)
	}

	// Window 1: pb is untrusted, so its publish never reaches pq.
	xa := mustEdit(t, pa, core.Insert("F", core.Strs("rat", "p1", "va"), "pa"))
	mustCycle(t, pa)
	mustEdit(t, pb, core.Insert("F", core.Strs("mouse", "p2", "early"), "pb"))
	mustCycle(t, pb)
	res := mustCycle(t, pq)
	wantIDSet(t, "pq window 1 accepted", res.Accepted, xa.ID)
	wantTuples(t, pq.Instance(), "F", core.Strs("rat", "p1", "va"))

	// Mid-stream re-registration: the replacement policy governs the next
	// window. (The skipped window-1 publish is not replayed — relevance is
	// evaluated per window.)
	if _, err := pq.SetTrust(ctx, TrustOrigins(map[core.PeerID]int{"pa": 1, "pb": 1})); err != nil {
		t.Fatalf("re-register trust: %v", err)
	}
	yb := mustEdit(t, pb, core.Insert("F", core.Strs("dog", "p3", "late"), "pb"))
	mustCycle(t, pb)
	res = mustCycle(t, pq)
	wantIDSet(t, "pq window 2 accepted", res.Accepted, yb.ID)
	wantTuples(t, pq.Instance(), "F",
		core.Strs("rat", "p1", "va"),
		core.Strs("dog", "p3", "late"))

	// The delegation legs need a store that resolves closures; the DHT
	// store holds policies client-side and skips by design.
	if !store.CanResolveTrust(clientFor("pq")) {
		t.Skipf("%T does not resolve trust delegations", clientFor("pq"))
	}

	// Delegating to a peer the store has never seen is a clean error...
	bogus := trust.MustParse("priority 1 when origin = 'pa'\ndelegate 'nobody' priority 5")
	if _, err := pq.SetTrust(ctx, bogus); err == nil {
		t.Fatal("delegation to unregistered peer was accepted")
	}
	// ...that leaves the previously active policy in force.
	za := mustEdit(t, pa, core.Insert("F", core.Strs("cow", "p4", "still"), "pa"))
	mustCycle(t, pa)
	res = mustCycle(t, pq)
	wantIDSet(t, "pq accepted after refused registration", res.Accepted, za.ID)

	// A valid delegation resolves transitively: pq delegates to pd, whose
	// policy trusts pz, so pz's publishes reach pq capped at the delegation
	// priority.
	pz, err := store.NewPeer(ctx, "pz", s, TrustAll(1), clientFor("pz"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.NewPeer(ctx, "pd", s, TrustOrigins(map[core.PeerID]int{"pz": 3}), clientFor("pd")); err != nil {
		t.Fatal(err)
	}
	del := trust.MustParse(
		"priority 2 when origin = 'pa'\npriority 2 when origin = 'pb'\ndelegate 'pd' priority 1")
	if _, err := pq.SetTrust(ctx, del); err != nil {
		t.Fatalf("delegating re-register: %v", err)
	}
	wz := mustEdit(t, pz, core.Insert("F", core.Strs("cat", "p5", "viadelegate"), "pz"))
	mustCycle(t, pz)
	res = mustCycle(t, pq)
	wantIDSet(t, "pq accepted via delegation", res.Accepted, wz.ID)
	wantTuples(t, pq.Instance(), "F",
		core.Strs("rat", "p1", "va"),
		core.Strs("dog", "p3", "late"),
		core.Strs("cow", "p4", "still"),
		core.Strs("cat", "p5", "viadelegate"))
}
