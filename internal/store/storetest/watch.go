package storetest

import (
	"context"
	"testing"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/store"
)

// RunWatchConformance runs the watch-subscription conformance suite against
// the factory: capability probing, event ordering and contiguity (no stable
// epoch skipped or delivered twice), cursor resume across a disconnect, and
// the compaction boundary. Stores without watch support (the DHT store, by
// design) skip every leg via the store.CanWatch probe.
func RunWatchConformance(t *testing.T, factory Factory) {
	t.Run("Capability", func(t *testing.T) { testWatchCapability(t, factory) })
	t.Run("StreamOrdering", func(t *testing.T) { testWatchStreamOrdering(t, factory) })
	t.Run("CursorResume", func(t *testing.T) { testWatchCursorResume(t, factory) })
	t.Run("CompactedEpochs", func(t *testing.T) { testWatchCompactedEpochs(t, factory) })
}

// watchEventTimeout bounds how long the suite waits for one event; the
// remote proxy's long-poll cadence sits well inside it.
const watchEventTimeout = 10 * time.Second

func nextWatchEvent(t *testing.T, ch <-chan store.WatchEvent) (store.WatchEvent, bool) {
	t.Helper()
	select {
	case ev, ok := <-ch:
		return ev, ok
	case <-time.After(watchEventTimeout):
		t.Fatalf("no watch event within %s", watchEventTimeout)
		return store.WatchEvent{}, false
	}
}

func watcherOrSkip(t *testing.T, st store.Store) store.Watcher {
	t.Helper()
	if !store.CanWatch(context.Background(), st) {
		t.Skipf("%T cannot watch stable epochs", st)
	}
	w, ok := st.(store.Watcher)
	if !ok {
		t.Fatalf("%T probes watchable but does not implement store.Watcher", st)
	}
	return w
}

// testWatchCapability: the probe and the interface must agree — a store
// whose probe answers true must serve a subscription, and one whose probe
// answers false must not silently pretend to (WatchFrom absent or failing).
func testWatchCapability(t *testing.T, factory Factory) {
	s := Schema(t)
	clientFor, cleanup := factory(t, s)
	defer cleanup()
	ctx := context.Background()
	st := clientFor("pa")

	if !store.CanWatch(ctx, st) {
		if w, ok := st.(store.Watcher); ok {
			cctx, cancel := context.WithCancel(ctx)
			defer cancel()
			if ch, err := w.WatchFrom(cctx, 0); err == nil {
				cancel()
				// A non-watching store may expose the method (a proxy whose
				// backend cannot watch); the subscription must not deliver.
				if ev, ok := <-ch; ok {
					t.Errorf("probe says unwatchable but subscription delivered %+v", ev)
				}
			}
		}
		return
	}
	w := watcherOrSkip(t, st)
	cctx, cancel := context.WithCancel(ctx)
	ch, err := w.WatchFrom(cctx, 0)
	if err != nil {
		t.Fatalf("probe says watchable but WatchFrom failed: %v", err)
	}
	cancel()
	for range ch { // the subscription honors cancellation by closing
	}
}

// testWatchStreamOrdering: events are contiguous (each From equals the
// previous To), strictly advancing, and carry every published transaction
// exactly once, in publication order — the no-skip/no-duplicate guarantee,
// across both catch-up (history published before the subscription) and live
// delivery (history published while subscribed).
func testWatchStreamOrdering(t *testing.T, factory Factory) {
	s := Schema(t)
	clientFor, cleanup := factory(t, s)
	defer cleanup()
	ctx := context.Background()
	w := watcherOrSkip(t, clientFor("pa"))

	pa, err := store.NewPeer(ctx, "pa", s, TrustAll(1), clientFor("pa"))
	if err != nil {
		t.Fatal(err)
	}
	var published []core.TxnID
	publish := func(fn string) {
		x := mustEdit(t, pa, core.Insert("F", core.Strs("rat", fn, "v"), "pa"))
		if _, err := pa.Publish(ctx); err != nil {
			t.Fatalf("publish: %v", err)
		}
		published = append(published, x.ID)
	}

	// Catch-up: three epochs exist before anyone subscribes.
	publish("p1")
	publish("p2")
	publish("p3")

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch, err := w.WatchFrom(cctx, 0)
	if err != nil {
		t.Fatalf("WatchFrom(0): %v", err)
	}

	var got []core.TxnID
	cursor := core.Epoch(0)
	receiveThrough := func(n int) {
		t.Helper()
		for len(got) < n {
			ev, ok := nextWatchEvent(t, ch)
			if !ok {
				t.Fatalf("subscription closed after %d/%d txns", len(got), n)
			}
			if ev.From != cursor {
				t.Fatalf("event gap: From=%d after cursor %d", ev.From, cursor)
			}
			if ev.To <= ev.From {
				t.Fatalf("non-advancing event: %d -> %d", ev.From, ev.To)
			}
			cursor = ev.To
			for _, pt := range ev.Txns {
				got = append(got, pt.Txn.ID)
			}
		}
	}
	receiveThrough(3)

	// Live: two more epochs arrive while subscribed, with no re-delivery of
	// the caught-up history.
	publish("p4")
	publish("p5")
	receiveThrough(5)

	if len(got) != len(published) {
		t.Fatalf("received %d txns, published %d", len(got), len(published))
	}
	for i := range published {
		if got[i] != published[i] {
			t.Errorf("txn %d: got %v, want %v (order or duplication broken)", i, got[i], published[i])
		}
	}
}

// testWatchCursorResume: a consumer that loses its subscription and
// re-subscribes from its cursor sees exactly the epochs it has not yet
// consumed — nothing skipped, nothing delivered twice.
func testWatchCursorResume(t *testing.T, factory Factory) {
	s := Schema(t)
	clientFor, cleanup := factory(t, s)
	defer cleanup()
	ctx := context.Background()
	w := watcherOrSkip(t, clientFor("pa"))

	pa, err := store.NewPeer(ctx, "pa", s, TrustAll(1), clientFor("pa"))
	if err != nil {
		t.Fatal(err)
	}
	var published []core.TxnID
	publish := func(fn string) {
		x := mustEdit(t, pa, core.Insert("F", core.Strs("rat", fn, "v"), "pa"))
		if _, err := pa.Publish(ctx); err != nil {
			t.Fatalf("publish: %v", err)
		}
		published = append(published, x.ID)
	}

	publish("p1")
	publish("p2")

	// First subscription: consume the two epochs, then disconnect.
	cctx1, cancel1 := context.WithCancel(ctx)
	ch, err := w.WatchFrom(cctx1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []core.TxnID
	cursor := core.Epoch(0)
	for len(got) < 2 {
		ev, ok := nextWatchEvent(t, ch)
		if !ok {
			t.Fatal("subscription closed before delivering history")
		}
		cursor = ev.To
		for _, pt := range ev.Txns {
			got = append(got, pt.Txn.ID)
		}
	}
	cancel1()
	for range ch {
	}

	// Epochs published while disconnected must be waiting on resume.
	publish("p3")
	publish("p4")

	cctx2, cancel2 := context.WithCancel(ctx)
	defer cancel2()
	ch, err = w.WatchFrom(cctx2, cursor)
	if err != nil {
		t.Fatalf("resume WatchFrom(%d): %v", cursor, err)
	}
	for len(got) < 4 {
		ev, ok := nextWatchEvent(t, ch)
		if !ok {
			t.Fatal("resumed subscription closed early")
		}
		if ev.From < cursor {
			t.Fatalf("resume re-delivered consumed window: From=%d, cursor=%d", ev.From, cursor)
		}
		cursor = ev.To
		for _, pt := range ev.Txns {
			got = append(got, pt.Txn.ID)
		}
	}
	if len(got) != len(published) {
		t.Fatalf("received %d txns across resume, published %d", len(got), len(published))
	}
	for i := range published {
		if got[i] != published[i] {
			t.Errorf("txn %d: got %v, want %v (skip or double-apply across resume)", i, got[i], published[i])
		}
	}
}

// testWatchCompactedEpochs: a subscription cannot start below the
// compaction horizon — the history is gone, so the store must refuse
// (an immediate error, or a proxy's subscription that closes without
// delivering) rather than silently skip the missing epochs.
func testWatchCompactedEpochs(t *testing.T, factory Factory) {
	s := Schema(t)
	clientFor, cleanup := factory(t, s)
	defer cleanup()
	ctx := context.Background()
	w := watcherOrSkip(t, clientFor("pa"))
	if !store.CanSnapshot(ctx, clientFor("pa")) {
		t.Skipf("%T cannot snapshot", clientFor("pa"))
	}
	snapc := clientFor("pa").(store.Snapshotter)

	pa, err := store.NewPeer(ctx, "pa", s, TrustAll(1), clientFor("pa"))
	if err != nil {
		t.Fatal(err)
	}
	mustEdit(t, pa, core.Insert("F", core.Strs("rat", "p1", "v"), "pa"))
	mustCycle(t, pa)
	mustEdit(t, pa, core.Insert("F", core.Strs("rat", "p2", "v"), "pa"))
	mustCycle(t, pa)

	snapEpoch, err := snapc.Snapshot(ctx)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := snapc.CompactBefore(ctx, snapEpoch); err != nil {
		t.Fatalf("compact through %d: %v", snapEpoch, err)
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch, err := w.WatchFrom(cctx, 0)
	if err != nil {
		return // refused up front: correct
	}
	select {
	case ev, ok := <-ch:
		if ok {
			t.Fatalf("watch below compaction horizon delivered %+v instead of failing", ev)
		}
		// Closed without delivering: the proxy form of the refusal.
	case <-time.After(watchEventTimeout):
		t.Fatal("watch below compaction horizon neither failed nor closed")
	}

	// From the horizon itself the subscription works again.
	ch, err = w.WatchFrom(cctx, snapEpoch)
	if err != nil {
		t.Fatalf("WatchFrom(%d) at the horizon: %v", snapEpoch, err)
	}
	mustEdit(t, pa, core.Insert("F", core.Strs("rat", "p3", "v"), "pa"))
	if _, err := pa.Publish(ctx); err != nil {
		t.Fatal(err)
	}
	ev, ok := nextWatchEvent(t, ch)
	if !ok {
		t.Fatal("horizon subscription closed before delivering")
	}
	if ev.From < snapEpoch {
		t.Errorf("horizon subscription reached back to %d (horizon %d)", ev.From, snapEpoch)
	}
}
