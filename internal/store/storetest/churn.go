package storetest

import (
	"context"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/store"
)

// testChurnRejoin is the churn conformance cell: a peer departs mid-round
// — after its publish lands but before it reconciles again — taking all
// soft state with it. The store must retain the departed peer's decisions
// verbatim while it is away, and a rejoining peer must bootstrap through
// the snapshot + tail path (store.RebuildPeer) into exactly the state it
// left plus the history it missed, then converge by ordinary
// reconciliation. Stores that cannot snapshot (the DHT store, by design)
// skip.
func testChurnRejoin(t *testing.T, factory Factory) {
	s := Schema(t)
	clientFor, cleanup := factory(t, s)
	defer cleanup()
	ctx := context.Background()
	if !store.CanSnapshot(ctx, clientFor("pc")) {
		t.Skipf("%T cannot snapshot", clientFor("pc"))
	}
	snapc := clientFor("pc").(store.Snapshotter)

	trustC := TrustOrigins(map[core.PeerID]int{"pa": 2, "pb": 1, "pc": 3})
	pa, _ := store.NewPeer(ctx, "pa", s, TrustAll(1), clientFor("pa"))
	pb, _ := store.NewPeer(ctx, "pb", s, TrustAll(1), clientFor("pb"))
	pc, err := store.NewPeer(ctx, "pc", s, trustC, clientFor("pc"))
	if err != nil {
		t.Fatal(err)
	}
	var universe []core.TxnID
	edit := func(p *store.Peer, us ...core.Update) *core.Transaction {
		x := mustEdit(t, p, us...)
		universe = append(universe, x.ID)
		return x
	}

	// Round 1: a conflicting pair; pc accepts pa's value and rejects pb's,
	// so the retained decisions carry both verdict kinds.
	xa0 := edit(pa, core.Insert("F", core.Strs("rat", "p1", "high"), "pa"))
	mustCycle(t, pa)
	xb0 := edit(pb, core.Insert("F", core.Strs("rat", "p1", "low"), "pb"))
	mustCycle(t, pb)
	res := mustCycle(t, pc)
	wantIDSet(t, "pc round-1 accepted", res.Accepted, xa0.ID)
	wantIDSet(t, "pc round-1 rejected", res.Rejected, xb0.ID)
	recnoAtDeparture, err := clientFor("pc").CurrentRecno(ctx, "pc")
	if err != nil {
		t.Fatal(err)
	}

	// Mid-round departure: pc's own edit is published (durable), but the
	// reconcile that would have followed never happens — the peer object and
	// every bit of its soft state are simply gone.
	xc0 := edit(pc, core.Insert("F", core.Strs("dog", "p3", "pc-val"), "pc"))
	if _, err := pc.Publish(ctx); err != nil {
		t.Fatalf("pc departing publish: %v", err)
	}
	pc = nil // departed

	// A snapshot lands after the departure, splitting history into a
	// snapshot the rejoin will bootstrap from and a tail it must replay.
	snapEpoch, err := snapc.Snapshot(ctx)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	// Away-time history: another conflicting pair pc has never seen.
	xa1 := edit(pa, core.Insert("F", core.Strs("mouse", "p2", "high"), "pa"))
	mustCycle(t, pa)
	xb1 := edit(pb, core.Insert("F", core.Strs("mouse", "p2", "low"), "pb"))
	mustCycle(t, pb)

	// The store retained the departed peer's progress: its recno is frozen
	// where it left, and the snapshot the rejoin will use exists.
	if n, err := clientFor("pc").CurrentRecno(ctx, "pc"); err != nil || n != recnoAtDeparture {
		t.Errorf("departed pc recno = %d, %v (want frozen at %d)", n, err, recnoAtDeparture)
	}
	if sr, ok := clientFor("pc").(store.SnapshotReplayer); ok {
		snap, err := sr.LatestSnapshot(ctx)
		if err != nil || snap == nil || snap.Epoch < snapEpoch {
			t.Fatalf("latest snapshot = %+v, %v (want epoch >= %d)", snap, err, snapEpoch)
		}
	}

	// Rejoin: bootstrap from snapshot + tail. Everything decided before the
	// departure — accepts, rejects, and the mid-round self-publish — must be
	// back verbatim.
	rc, err := store.RebuildPeer(ctx, "pc", s, trustC, clientFor("pc"))
	if err != nil {
		t.Fatalf("rejoin rebuild: %v", err)
	}
	for _, id := range []core.TxnID{xa0.ID, xc0.ID} {
		if !rc.Engine().Applied(id) {
			t.Errorf("rejoined pc lost accept of %s", id)
		}
	}
	if !rc.Engine().Rejected(xb0.ID) {
		t.Errorf("rejoined pc lost reject of %s", xb0.ID)
	}

	// Catch-up: one ordinary reconciliation delivers exactly the away-time
	// window — no redelivery of anything decided before the departure.
	res, err = rc.PublishAndReconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantIDSet(t, "rejoined pc caught-up accepted", res.Accepted, xa1.ID)
	wantIDSet(t, "rejoined pc caught-up rejected", res.Rejected, xb1.ID)
	if len(res.Deferred) != 0 {
		t.Errorf("rejoined pc deferred: %v", res.Deferred)
	}
	wantTuples(t, rc.Instance(), "F",
		core.Strs("rat", "p1", "high"),
		core.Strs("mouse", "p2", "high"),
		core.Strs("dog", "p3", "pc-val"))

	// Convergence is bit-identical: a full-replay control rebuilt from the
	// same log agrees with the snapshot-bootstrapped rejoiner everywhere.
	if store.CanReplay(ctx, clientFor("pc")) {
		full, err := store.FullReplayRebuild(ctx, "pc", s, trustC, clientFor("pc"))
		if err != nil {
			t.Fatalf("full-replay control: %v", err)
		}
		sameRebuiltState(t, "rejoined vs full-replay control", rc, full, universe)
	}
}
