// Package storetest provides a conformance suite run against every
// store.Store implementation: the paper's Figure 2 scenario end-to-end,
// trust and antecedent chasing, deferral and resolution, soft-state
// recovery (publish → reconcile → recover, for stores that can replay),
// and a cross-implementation equivalence check.
//
// Trust policies are built textually (TrustAll, TrustOrigins below) so the
// identical suite drives in-process backends and wire-protocol backends,
// whose RegisterPeer only carries policies as text.
package storetest

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/store"
	"orchestra/internal/trust"
)

// TrustAll returns a textual policy assigning the same priority to every
// update — core.TrustAll semantics in the form every backend can carry.
func TrustAll(priority int) core.Trust {
	p, err := trust.Parse(fmt.Sprintf("priority %d when true", priority))
	if err != nil {
		panic(err)
	}
	return p
}

// TrustOrigins returns a textual policy mapping each originating peer to a
// priority, 0 for unlisted peers — core.TrustOrigins semantics in the form
// every backend can carry.
func TrustOrigins(prio map[core.PeerID]int) core.Trust {
	ids := make([]string, 0, len(prio))
	for id := range prio {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	var b strings.Builder
	for _, id := range ids {
		if prio[core.PeerID(id)] <= 0 {
			continue // priority 0 is the implicit "untrusted" default
		}
		fmt.Fprintf(&b, "priority %d when origin = '%s'\n", prio[core.PeerID(id)], id)
	}
	p, err := trust.Parse(b.String())
	if err != nil {
		panic(err)
	}
	return p
}

// Factory builds a fresh store for a schema, plus a per-peer store client
// (some implementations, like the DHT store, give each peer its own entry
// point) and a cleanup.
type Factory func(t *testing.T, schema *core.Schema) (clientFor func(peer core.PeerID) store.Store, cleanup func())

// Schema returns the paper's protein-function relation.
func Schema(t *testing.T) *core.Schema {
	t.Helper()
	s, err := core.NewSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustEdit(t *testing.T, p *store.Peer, us ...core.Update) *core.Transaction {
	t.Helper()
	x, err := p.Edit(us...)
	if err != nil {
		t.Fatalf("edit at %s: %v", p.ID(), err)
	}
	return x
}

func mustCycle(t *testing.T, p *store.Peer) *core.Result {
	t.Helper()
	res, err := p.PublishAndReconcile(context.Background())
	if err != nil {
		t.Fatalf("publish+reconcile at %s: %v", p.ID(), err)
	}
	return res
}

func wantTuples(t *testing.T, in *core.Instance, rel string, want ...core.Tuple) {
	t.Helper()
	got := in.Tuples(rel)
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", rel, got, want)
	}
	idx := map[string]bool{}
	for _, w := range want {
		idx[w.Encode()] = true
	}
	for _, g := range got {
		if !idx[g.Encode()] {
			t.Errorf("%s: unexpected tuple %v", rel, g)
		}
	}
}

func wantIDSet(t *testing.T, what string, got []core.TxnID, want ...core.TxnID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", what, got, want)
	}
	set := core.NewTxnSet(want...)
	for _, id := range got {
		if !set.Has(id) {
			t.Errorf("%s: unexpected %v (want %v)", what, id, want)
		}
	}
}

// RunConformance runs the whole suite against the factory.
func RunConformance(t *testing.T, factory Factory) {
	t.Run("Figure2", func(t *testing.T) { testFigure2(t, factory) })
	t.Run("Figure2Resolution", func(t *testing.T) { testFigure2Resolution(t, factory) })
	t.Run("AntecedentChasing", func(t *testing.T) { testAntecedentChasing(t, factory) })
	t.Run("UntrustedSkipped", func(t *testing.T) { testUntrustedSkipped(t, factory) })
	t.Run("EmptyPublish", func(t *testing.T) { testEmptyPublish(t, factory) })
	t.Run("RecnoAdvances", func(t *testing.T) { testRecnoAdvances(t, factory) })
	t.Run("NoRedelivery", func(t *testing.T) { testNoRedelivery(t, factory) })
	t.Run("PriorityConflict", func(t *testing.T) { testPriorityConflict(t, factory) })
	t.Run("BatchedDecisions", func(t *testing.T) { testBatchedDecisions(t, factory) })
	t.Run("ReplayRebuild", func(t *testing.T) { testReplayRebuild(t, factory) })
	t.Run("SnapshotRebuild", func(t *testing.T) { testSnapshotRebuild(t, factory) })
	t.Run("ChurnRejoin", func(t *testing.T) { testChurnRejoin(t, factory) })
	t.Run("IdempotentRetry", func(t *testing.T) { testIdempotentRetry(t, factory) })
	t.Run("TrustUpdate", func(t *testing.T) { testTrustUpdate(t, factory) })
}

// testIdempotentRetry: on stores that dedupe keyed operations
// (store.CanDedupe — the DHT store skips by design), delivering the same
// keyed Publish, BeginReconciliation, or RecordDecisionsBatch twice — what
// a retry after a lost reply does — must behave exactly like one delivery:
// one epoch allocated, the same reconciliation window replayed, decisions
// recorded once.
func testIdempotentRetry(t *testing.T, factory Factory) {
	s := Schema(t)
	clientFor, cleanup := factory(t, s)
	defer cleanup()
	ctx := context.Background()
	st := clientFor("pa")
	if !store.CanDedupe(ctx, st) {
		t.Skipf("%T cannot dedupe keyed operations", st)
	}
	pa, err := store.NewPeer(ctx, "pa", s, TrustAll(1), clientFor("pa"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.NewPeer(ctx, "pb", s, TrustAll(1), clientFor("pb")); err != nil {
		t.Fatal(err)
	}

	// A retried publish: both deliveries of the keyed call return the same
	// epoch, and the store holds the batch once.
	x := mustEdit(t, pa, core.Insert("F", core.Strs("rat", "p1", "v"), "pa"))
	batch := []store.PublishedTxn{{Txn: x, Antecedents: pa.Engine().LocalAntecedents(x.ID)}}
	kctx := store.WithIdempotencyKey(ctx, "conformance/publish/1")
	e1, err := st.Publish(kctx, "pa", batch)
	if err != nil {
		t.Fatalf("keyed publish: %v", err)
	}
	e2, err := st.Publish(kctx, "pa", batch)
	if err != nil {
		t.Fatalf("retried publish: %v", err)
	}
	if e1 != e2 {
		t.Errorf("retried publish allocated a new epoch: %d then %d", e1, e2)
	}

	// A retried begin replays the first delivery's window and candidates
	// instead of handing out a fresh (empty) one.
	pbStore := clientFor("pb")
	bctx := store.WithIdempotencyKey(ctx, "conformance/begin/1")
	r1, err := pbStore.BeginReconciliation(bctx, "pb")
	if err != nil {
		t.Fatalf("keyed begin: %v", err)
	}
	r2, err := pbStore.BeginReconciliation(bctx, "pb")
	if err != nil {
		t.Fatalf("retried begin: %v", err)
	}
	if r1.Recno != r2.Recno || r1.FromEpoch != r2.FromEpoch || r1.ToEpoch != r2.ToEpoch {
		t.Errorf("retried begin window differs: %+v vs %+v", r1, r2)
	}
	ids := func(r *store.Reconciliation) []core.TxnID {
		out := make([]core.TxnID, 0, len(r.Candidates))
		for _, c := range r.Candidates {
			out = append(out, c.Txn.ID)
		}
		return out
	}
	wantIDSet(t, "keyed begin candidates", ids(r1), x.ID)
	wantIDSet(t, "retried begin candidates", ids(r2), ids(r1)...)

	// A retried decision batch records once; the decision sticks and the
	// transaction is never redelivered.
	dctx := store.WithIdempotencyKey(ctx, "conformance/decide/1")
	batches := []store.DecisionBatch{{Peer: "pb", Recno: r1.Recno, Accepted: []core.TxnID{x.ID}}}
	if err := pbStore.RecordDecisionsBatch(dctx, batches); err != nil {
		t.Fatalf("keyed decide: %v", err)
	}
	if err := pbStore.RecordDecisionsBatch(dctx, batches); err != nil {
		t.Fatalf("retried decide: %v", err)
	}
	if n, err := pbStore.CurrentRecno(ctx, "pb"); err != nil || n != r1.Recno {
		t.Errorf("pb recno = %d, %v (want %d)", n, err, r1.Recno)
	}
	r3, err := pbStore.BeginReconciliation(ctx, "pb")
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Candidates) != 0 {
		t.Errorf("decided txn redelivered: %+v", ids(r3))
	}

	// Reusing a key across operations is a protocol error, not a dedup hit.
	if _, err := st.Publish(store.WithIdempotencyKey(ctx, "conformance/begin/1"), "pa", nil); err == nil {
		t.Error("cross-operation key reuse succeeded")
	}
}

// sameRebuiltState asserts two peers hold bit-identical rebuilt state over
// the given universe of transactions: same instance, same accept/reject
// verdict for every transaction, no phantom soft state.
func sameRebuiltState(t *testing.T, what string, a, b *store.Peer, universe []core.TxnID) {
	t.Helper()
	if !a.Instance().Equal(b.Instance()) {
		t.Errorf("%s: instances differ: %v vs %v", what, a.Instance().Tuples("F"), b.Instance().Tuples("F"))
	}
	for _, id := range universe {
		if a.Engine().Applied(id) != b.Engine().Applied(id) {
			t.Errorf("%s: applied(%s) differs", what, id)
		}
		if a.Engine().Rejected(id) != b.Engine().Rejected(id) {
			t.Errorf("%s: rejected(%s) differs", what, id)
		}
	}
	if da, db := a.Engine().DeferredIDs(), b.Engine().DeferredIDs(); len(da) != len(db) {
		t.Errorf("%s: deferred %v vs %v", what, da, db)
	}
}

// testSnapshotRebuild is the snapshot leg of the recovery conformance: on
// stores that support snapshots (store.CanSnapshot — the DHT store skips by
// design), a peer rebuilt through the snapshot + tail path must be
// bit-identical to one rebuilt by full replay — instance, accepts, rejects
// — and keep reconciling; and after compaction, when full replay no longer
// exists, every registered peer must still rebuild to exactly that state.
func testSnapshotRebuild(t *testing.T, factory Factory) {
	s := Schema(t)
	clientFor, cleanup := factory(t, s)
	defer cleanup()
	ctx := context.Background()
	if !store.CanSnapshot(ctx, clientFor("pq")) {
		t.Skipf("%T cannot snapshot", clientFor("pq"))
	}
	snapc := clientFor("pq").(store.Snapshotter)

	trustQ := TrustOrigins(map[core.PeerID]int{"pa": 2, "pb": 1})
	pa, _ := store.NewPeer(ctx, "pa", s, TrustAll(1), clientFor("pa"))
	pb, _ := store.NewPeer(ctx, "pb", s, TrustAll(1), clientFor("pb"))
	pq, err := store.NewPeer(ctx, "pq", s, trustQ, clientFor("pq"))
	if err != nil {
		t.Fatal(err)
	}
	var universe []core.TxnID
	edit := func(p *store.Peer, us ...core.Update) *core.Transaction {
		x := mustEdit(t, p, us...)
		universe = append(universe, x.ID)
		return x
	}

	// Pre-snapshot history with accepts and rejects: pa's chain wins over
	// pb's conflicting value at pq.
	xa0 := edit(pa, core.Insert("F", core.Strs("rat", "p1", "v0"), "pa"))
	xa1 := edit(pa, core.Modify("F", core.Strs("rat", "p1", "v0"), core.Strs("rat", "p1", "v1"), "pa"))
	mustCycle(t, pa)
	xb0 := edit(pb, core.Insert("F", core.Strs("rat", "p1", "other"), "pb"))
	mustCycle(t, pb)
	res := mustCycle(t, pq)
	wantIDSet(t, "pq pre-snapshot accepted", res.Accepted, xa0.ID, xa1.ID)
	wantIDSet(t, "pq pre-snapshot rejected", res.Rejected, xb0.ID)

	snapEpoch, err := snapc.Snapshot(ctx)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if snapEpoch <= 0 {
		t.Fatalf("snapshot covered epoch %d", snapEpoch)
	}

	// Post-snapshot tail, with another accept/reject pair so the tail
	// replay is exercised for both decision kinds.
	xa2 := edit(pa, core.Insert("F", core.Strs("mouse", "p2", "hi"), "pa"))
	mustCycle(t, pa)
	xb1 := edit(pb, core.Insert("F", core.Strs("mouse", "p2", "lo"), "pb"))
	mustCycle(t, pb)
	res = mustCycle(t, pq)
	wantIDSet(t, "pq tail accepted", res.Accepted, xa2.ID)
	wantIDSet(t, "pq tail rejected", res.Rejected, xb1.ID)

	// The two rebuild paths must agree bit-for-bit (and with the live peer).
	full, err := store.FullReplayRebuild(ctx, "pq", s, trustQ, clientFor("pq"))
	if err != nil {
		t.Fatalf("full-replay rebuild: %v", err)
	}
	snapQ, err := store.RebuildPeer(ctx, "pq", s, trustQ, clientFor("pq"))
	if err != nil {
		t.Fatalf("snapshot rebuild: %v", err)
	}
	sameRebuiltState(t, "snapshot vs full replay", snapQ, full, universe)
	sameRebuiltState(t, "snapshot vs live", snapQ, pq, universe)

	// The snapshot-rebuilt peer keeps reconciling exactly like the lost one
	// would: one fresh publish arrives exactly once, nothing is redelivered.
	xa3 := edit(pa, core.Insert("F", core.Strs("dog", "p3", "w"), "pa"))
	mustCycle(t, pa)
	mustCycle(t, pb)
	res, err = snapQ.PublishAndReconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantIDSet(t, "rebuilt pq accepted", res.Accepted, xa3.ID)
	if len(res.Rejected)+len(res.Deferred) != 0 {
		t.Errorf("rebuilt pq redelivered decided txns: %+v", res)
	}

	// Compact behind a fresh snapshot covering everyone's frontier; the
	// compacted store must still rebuild every registered peer to the state
	// a pre-compaction rebuild produced, and the rebuilt consumer keeps
	// reconciling.
	trustFor := func(id core.PeerID) core.Trust {
		if id == "pq" {
			return trustQ
		}
		return TrustAll(1)
	}
	pre := make(map[core.PeerID]*store.Peer)
	for _, id := range []core.PeerID{"pa", "pb", "pq"} {
		p, err := store.RebuildPeer(ctx, id, s, trustFor(id), clientFor(id))
		if err != nil {
			t.Fatalf("pre-compaction rebuild %s: %v", id, err)
		}
		pre[id] = p
	}
	if _, err := snapc.Snapshot(ctx); err != nil {
		t.Fatalf("second snapshot: %v", err)
	}
	if err := snapc.CompactBefore(ctx, snapEpoch); err != nil {
		t.Fatalf("compact through %d: %v", snapEpoch, err)
	}
	for _, id := range []core.PeerID{"pa", "pb", "pq"} {
		p, err := store.RebuildPeer(ctx, id, s, trustFor(id), clientFor(id))
		if err != nil {
			t.Fatalf("post-compaction rebuild %s: %v", id, err)
		}
		sameRebuiltState(t, "post-compaction rebuild "+string(id), p, pre[id], universe)
	}
	rq, err := store.RebuildPeer(ctx, "pq", s, trustQ, clientFor("pq"))
	if err != nil {
		t.Fatal(err)
	}
	xa4 := edit(pa, core.Insert("F", core.Strs("cat", "p4", "z"), "pa"))
	mustCycle(t, pa)
	res, err = rq.PublishAndReconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantIDSet(t, "compacted-store rebuilt pq accepted", res.Accepted, xa4.ID)
}

// testReplayRebuild round-trips publish → reconcile → recover: after a
// history with accepts and rejects, every peer is rebuilt from nothing but
// the store's replay log (store.RebuildPeer, the §5.2 soft-state
// guarantee) and must come back with an identical instance and decision
// sets — and keep reconciling from where the lost peer stopped. Stores
// that cannot replay (the DHT store, by design) skip.
func testReplayRebuild(t *testing.T, factory Factory) {
	s := Schema(t)
	clientFor, cleanup := factory(t, s)
	defer cleanup()
	ctx := context.Background()
	if !store.CanReplay(ctx, clientFor("pq")) {
		t.Skipf("%T cannot replay peer state", clientFor("pq"))
	}

	trustQ := TrustOrigins(map[core.PeerID]int{"pa": 2, "pb": 1})
	pa, _ := store.NewPeer(ctx, "pa", s, TrustAll(1), clientFor("pa"))
	pb, _ := store.NewPeer(ctx, "pb", s, TrustAll(1), clientFor("pb"))
	pq, err := store.NewPeer(ctx, "pq", s, trustQ, clientFor("pq"))
	if err != nil {
		t.Fatal(err)
	}

	// History: pa publishes an insert and a revision of it; pb publishes a
	// conflicting value for the same key; pq accepts pa's chain and rejects
	// pb's — so the rebuilt state must reproduce accepts *and* rejects.
	xa0 := mustEdit(t, pa, core.Insert("F", core.Strs("rat", "p1", "v0"), "pa"))
	xa1 := mustEdit(t, pa, core.Modify("F", core.Strs("rat", "p1", "v0"), core.Strs("rat", "p1", "v1"), "pa"))
	mustCycle(t, pa)
	xb := mustEdit(t, pb, core.Insert("F", core.Strs("rat", "p1", "other"), "pb"))
	mustCycle(t, pb)
	res := mustCycle(t, pq)
	wantIDSet(t, "pq accepted", res.Accepted, xa0.ID, xa1.ID)
	wantIDSet(t, "pq rejected", res.Rejected, xb.ID)

	// Recover pq from the store alone and compare against the live peer.
	rq, err := store.RebuildPeer(ctx, "pq", s, trustQ, clientFor("pq"))
	if err != nil {
		t.Fatalf("rebuild pq: %v", err)
	}
	wantTuples(t, rq.Instance(), "F", pq.Instance().Tuples("F")...)
	for _, id := range []core.TxnID{xa0.ID, xa1.ID} {
		if !rq.Engine().Applied(id) {
			t.Errorf("rebuilt pq lost accept of %s", id)
		}
	}
	if !rq.Engine().Rejected(xb.ID) {
		t.Errorf("rebuilt pq lost reject of %s", xb.ID)
	}

	// The rebuilt peer continues the protocol: a fresh publish from pa is
	// delivered to it exactly once, with no redelivery of decided history.
	xa2 := mustEdit(t, pa, core.Insert("F", core.Strs("mouse", "p2", "w"), "pa"))
	mustCycle(t, pa)
	res, err = rq.PublishAndReconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantIDSet(t, "rebuilt pq accepted", res.Accepted, xa2.ID)
	if len(res.Rejected)+len(res.Deferred) != 0 {
		t.Errorf("rebuilt pq redelivered decided txns: %+v", res)
	}
	wantTuples(t, rq.Instance(), "F",
		core.Strs("rat", "p1", "v1"),
		core.Strs("mouse", "p2", "w"))

	// Publishers rebuild too: their self-accepts are part of the log.
	ra, err := store.RebuildPeer(ctx, "pa", s, TrustAll(1), clientFor("pa"))
	if err != nil {
		t.Fatalf("rebuild pa: %v", err)
	}
	wantTuples(t, ra.Instance(), "F", pa.Instance().Tuples("F")...)
}

// testBatchedDecisions: RecordDecisionsBatch persists several peers'
// outcomes in one call, equivalently to per-peer RecordDecisions — nothing
// is redelivered afterwards and recnos advance normally.
func testBatchedDecisions(t *testing.T, factory Factory) {
	s := Schema(t)
	clientFor, cleanup := factory(t, s)
	defer cleanup()
	ctx := context.Background()
	pa, _ := store.NewPeer(ctx, "pa", s, TrustAll(1), clientFor("pa"))
	pq, _ := store.NewPeer(ctx, "pq", s, TrustAll(1), clientFor("pq"))
	pr, _ := store.NewPeer(ctx, "pr", s, TrustAll(1), clientFor("pr"))

	xa := mustEdit(t, pa, core.Insert("F", core.Strs("rat", "p1", "v"), "pa"))
	xb := mustEdit(t, pa, core.Insert("F", core.Strs("mouse", "p2", "w"), "pa"))
	mustCycle(t, pa)

	// Both consumers reconcile with recording deferred, then one batch
	// flushes both outcomes through a single store call.
	var batches []store.DecisionBatch
	for _, p := range []*store.Peer{pq, pr} {
		res, batch, err := p.ReconcileBuffered(ctx)
		if err != nil {
			t.Fatalf("buffered reconcile at %s: %v", p.ID(), err)
		}
		wantIDSet(t, string(p.ID())+" accepted", res.Accepted, xa.ID, xb.ID)
		batches = append(batches, batch)
	}
	if err := pq.Store().RecordDecisionsBatch(ctx, batches); err != nil {
		t.Fatalf("batch flush: %v", err)
	}

	// The recorded decisions stick: nothing is redelivered, and both
	// instances match the publisher's.
	for _, p := range []*store.Peer{pq, pr} {
		res, err := p.Reconcile(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Accepted)+len(res.Rejected)+len(res.Deferred) != 0 {
			t.Errorf("%s: redelivered after batch flush: %+v", p.ID(), res)
		}
		wantTuples(t, p.Instance(), "F",
			core.Strs("rat", "p1", "v"),
			core.Strs("mouse", "p2", "w"))
		if n, err := clientFor(p.ID()).CurrentRecno(ctx, p.ID()); err != nil || n != 2 {
			t.Errorf("%s recno = %d, %v", p.ID(), n, err)
		}
	}
}

// figure2Peers builds the Figure 1 trust topology over the store.
func figure2Peers(t *testing.T, s *core.Schema, clientFor func(core.PeerID) store.Store) (p1, p2, p3 *store.Peer) {
	ctx := context.Background()
	var err error
	p1, err = store.NewPeer(ctx, "p1", s, TrustOrigins(map[core.PeerID]int{"p2": 1, "p3": 1}), clientFor("p1"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err = store.NewPeer(ctx, "p2", s, TrustOrigins(map[core.PeerID]int{"p1": 2, "p3": 1}), clientFor("p2"))
	if err != nil {
		t.Fatal(err)
	}
	p3, err = store.NewPeer(ctx, "p3", s, TrustOrigins(map[core.PeerID]int{"p2": 1}), clientFor("p3"))
	if err != nil {
		t.Fatal(err)
	}
	return p1, p2, p3
}

// runFigure2 drives the four epochs and returns the transactions.
func runFigure2(t *testing.T, p1, p2, p3 *store.Peer) (x30, x31, x20, x21 *core.Transaction) {
	x30 = mustEdit(t, p3, core.Insert("F", core.Strs("rat", "prot1", "cell-metab"), "p3"))
	x31 = mustEdit(t, p3, core.Modify("F", core.Strs("rat", "prot1", "cell-metab"), core.Strs("rat", "prot1", "immune"), "p3"))
	mustCycle(t, p3)
	x20 = mustEdit(t, p2, core.Insert("F", core.Strs("mouse", "prot2", "immune"), "p2"))
	x21 = mustEdit(t, p2, core.Insert("F", core.Strs("rat", "prot1", "cell-resp"), "p2"))
	mustCycle(t, p2)
	mustCycle(t, p3)
	mustCycle(t, p1)
	return
}

func testFigure2(t *testing.T, factory Factory) {
	s := Schema(t)
	clientFor, cleanup := factory(t, s)
	defer cleanup()
	p1, p2, p3 := figure2Peers(t, s, clientFor)
	x30, x31, x20, x21 := runFigure2(t, p1, p2, p3)

	wantTuples(t, p3.Instance(), "F",
		core.Strs("mouse", "prot2", "immune"),
		core.Strs("rat", "prot1", "immune"))
	wantTuples(t, p2.Instance(), "F",
		core.Strs("mouse", "prot2", "immune"),
		core.Strs("rat", "prot1", "cell-resp"))
	wantTuples(t, p1.Instance(), "F", core.Strs("mouse", "prot2", "immune"))
	wantIDSet(t, "p1 deferred", p1.Engine().DeferredIDs(), x30.ID, x31.ID, x21.ID)
	if !p1.Engine().Applied(x20.ID) {
		t.Error("p1 should have applied x20")
	}
	if !p2.Engine().Rejected(x30.ID) || !p2.Engine().Rejected(x31.ID) {
		t.Error("p2 should have rejected p3's chain")
	}
	ctx := context.Background()
	if n, err := clientFor("p1").CurrentRecno(ctx, "p1"); err != nil || n != 1 {
		t.Errorf("p1 recno = %d, %v", n, err)
	}
}

func testFigure2Resolution(t *testing.T, factory Factory) {
	s := Schema(t)
	clientFor, cleanup := factory(t, s)
	defer cleanup()
	p1, p2, p3 := figure2Peers(t, s, clientFor)
	x30, x31, _, x21 := runFigure2(t, p1, p2, p3)

	groups := p1.Engine().ConflictGroups()
	if len(groups) != 1 || len(groups[0].Options) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	winner := -1
	for i, o := range groups[0].Options {
		for _, id := range o.Txns {
			if id == x31.ID {
				winner = i
			}
		}
	}
	res, err := p1.Resolve(context.Background(), groups[0].Conflict, winner)
	if err != nil {
		t.Fatal(err)
	}
	wantIDSet(t, "resolution accepted", res.Accepted, x30.ID, x31.ID)
	wantTuples(t, p1.Instance(), "F",
		core.Strs("mouse", "prot2", "immune"),
		core.Strs("rat", "prot1", "immune"))
	if !p1.Engine().Rejected(x21.ID) {
		t.Error("x21 should be rejected after resolution")
	}
}

// testAntecedentChasing verifies the §3.2 exception: p3 trusts only p2, but
// importing p2's revision pulls in p1's untrusted antecedent.
func testAntecedentChasing(t *testing.T, factory Factory) {
	s := Schema(t)
	clientFor, cleanup := factory(t, s)
	defer cleanup()
	ctx := context.Background()
	pa, err := store.NewPeer(ctx, "pa", s, TrustAll(1), clientFor("pa"))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := store.NewPeer(ctx, "pb", s, TrustAll(1), clientFor("pb"))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := store.NewPeer(ctx, "pc", s, TrustOrigins(map[core.PeerID]int{"pb": 1}), clientFor("pc"))
	if err != nil {
		t.Fatal(err)
	}

	xa := mustEdit(t, pa, core.Insert("F", core.Strs("rat", "p1", "orig"), "pa"))
	mustCycle(t, pa)
	mustCycle(t, pb)
	xb := mustEdit(t, pb, core.Modify("F", core.Strs("rat", "p1", "orig"), core.Strs("rat", "p1", "revised"), "pb"))
	mustCycle(t, pb)

	res := mustCycle(t, pc)
	wantIDSet(t, "pc accepted", res.Accepted, xa.ID, xb.ID)
	wantTuples(t, pc.Instance(), "F", core.Strs("rat", "p1", "revised"))
}

func testUntrustedSkipped(t *testing.T, factory Factory) {
	s := Schema(t)
	clientFor, cleanup := factory(t, s)
	defer cleanup()
	ctx := context.Background()
	pa, _ := store.NewPeer(ctx, "pa", s, TrustAll(1), clientFor("pa"))
	pz, _ := store.NewPeer(ctx, "pz", s, TrustAll(1), clientFor("pz"))
	pq, err := store.NewPeer(ctx, "pq", s, TrustOrigins(map[core.PeerID]int{"pa": 1}), clientFor("pq"))
	if err != nil {
		t.Fatal(err)
	}
	mustEdit(t, pz, core.Insert("F", core.Strs("rat", "p1", "untrusted"), "pz"))
	mustCycle(t, pz)
	xa := mustEdit(t, pa, core.Insert("F", core.Strs("mouse", "p2", "trusted"), "pa"))
	mustCycle(t, pa)
	res := mustCycle(t, pq)
	wantIDSet(t, "pq accepted", res.Accepted, xa.ID)
	wantTuples(t, pq.Instance(), "F", core.Strs("mouse", "p2", "trusted"))
}

func testEmptyPublish(t *testing.T, factory Factory) {
	s := Schema(t)
	clientFor, cleanup := factory(t, s)
	defer cleanup()
	ctx := context.Background()
	pa, err := store.NewPeer(ctx, "pa", s, TrustAll(1), clientFor("pa"))
	if err != nil {
		t.Fatal(err)
	}
	// Publishing with nothing pending allocates no epoch.
	if _, err := pa.Publish(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := pa.Reconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted)+len(res.Rejected)+len(res.Deferred) != 0 {
		t.Errorf("empty reconcile: %+v", res)
	}
}

func testRecnoAdvances(t *testing.T, factory Factory) {
	s := Schema(t)
	clientFor, cleanup := factory(t, s)
	defer cleanup()
	ctx := context.Background()
	pa, _ := store.NewPeer(ctx, "pa", s, TrustAll(1), clientFor("pa"))
	for i := 0; i < 3; i++ {
		if _, err := pa.Reconcile(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := clientFor("pa").CurrentRecno(ctx, "pa"); err != nil || n != 3 {
		t.Errorf("recno = %d, %v", n, err)
	}
}

// testNoRedelivery: a transaction is associated with one reconciliation
// and never redelivered.
func testNoRedelivery(t *testing.T, factory Factory) {
	s := Schema(t)
	clientFor, cleanup := factory(t, s)
	defer cleanup()
	ctx := context.Background()
	pa, _ := store.NewPeer(ctx, "pa", s, TrustAll(1), clientFor("pa"))
	pb, _ := store.NewPeer(ctx, "pb", s, TrustAll(1), clientFor("pb"))
	mustEdit(t, pa, core.Insert("F", core.Strs("rat", "p1", "v"), "pa"))
	mustCycle(t, pa)
	res := mustCycle(t, pb)
	if len(res.Accepted) != 1 {
		t.Fatalf("first reconcile: %+v", res)
	}
	res = mustCycle(t, pb)
	if len(res.Accepted)+len(res.Rejected)+len(res.Deferred) != 0 {
		t.Errorf("redelivered: %+v", res)
	}
}

func testPriorityConflict(t *testing.T, factory Factory) {
	s := Schema(t)
	clientFor, cleanup := factory(t, s)
	defer cleanup()
	ctx := context.Background()
	pa, _ := store.NewPeer(ctx, "pa", s, TrustAll(1), clientFor("pa"))
	pb, _ := store.NewPeer(ctx, "pb", s, TrustAll(1), clientFor("pb"))
	pq, err := store.NewPeer(ctx, "pq", s, TrustOrigins(map[core.PeerID]int{"pa": 2, "pb": 1}), clientFor("pq"))
	if err != nil {
		t.Fatal(err)
	}
	xa := mustEdit(t, pa, core.Insert("F", core.Strs("rat", "p1", "high"), "pa"))
	mustCycle(t, pa)
	xb := mustEdit(t, pb, core.Insert("F", core.Strs("rat", "p1", "low"), "pb"))
	mustCycle(t, pb)
	res := mustCycle(t, pq)
	wantIDSet(t, "accepted", res.Accepted, xa.ID)
	wantIDSet(t, "rejected", res.Rejected, xb.ID)
	wantTuples(t, pq.Instance(), "F", core.Strs("rat", "p1", "high"))
}
