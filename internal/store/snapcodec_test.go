package store

import (
	"reflect"
	"testing"

	"orchestra/internal/core"
)

// testSnapshot builds a representative store snapshot: two peers with
// populated engine states (decision sets, instance tuples, producers) and a
// residue carrying a multi-update transaction with antecedents.
func testSnapshot() *Snapshot {
	return &Snapshot{
		Epoch: 7,
		Peers: []PeerSnapshot{
			{
				LastEpoch:   5,
				Recno:       3,
				DecisionSeq: 9,
				Engine: core.EngineSnapshot{
					Peer:     "pa",
					NextSeq:  4,
					Applied:  []core.TxnID{{Origin: "pa", Seq: 0}, {Origin: "pb", Seq: 2}},
					Rejected: []core.TxnID{{Origin: "pz", Seq: 1}},
					Relations: []core.RelationSnapshot{
						{Name: "F", Tuples: []core.Tuple{
							core.Strs("mouse", "prot2", "immune"),
							core.Strs("rat", "prot1", "cell-metab"),
						}},
					},
					Producers: []core.ProducerSnapshot{
						{Rel: "F", Tuple: core.Strs("rat", "prot1", "cell-metab"), Txn: core.TxnID{Origin: "pa", Seq: 0}},
					},
				},
			},
			{
				LastEpoch:   7,
				Recno:       1,
				DecisionSeq: 2,
				Engine:      core.EngineSnapshot{Peer: "pq", NextSeq: 0},
			},
		},
		Residue: fuzzSeedBatch(),
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	snap := testSnapshot()
	payload := AppendSnapshot(nil, snap)
	got, err := DecodeSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != snap.Epoch || len(got.Peers) != len(snap.Peers) {
		t.Fatalf("decoded header: epoch=%d peers=%d", got.Epoch, len(got.Peers))
	}
	for i := range snap.Peers {
		want, have := &snap.Peers[i], &got.Peers[i]
		if have.LastEpoch != want.LastEpoch || have.Recno != want.Recno || have.DecisionSeq != want.DecisionSeq {
			t.Errorf("peer %d header mismatch: %+v", i, have)
		}
		if have.Engine.Peer != want.Engine.Peer || have.Engine.NextSeq != want.Engine.NextSeq {
			t.Errorf("peer %d engine header mismatch", i)
		}
		if !reflect.DeepEqual(have.Engine.Applied, want.Engine.Applied) ||
			!reflect.DeepEqual(have.Engine.Rejected, want.Engine.Rejected) {
			t.Errorf("peer %d decision sets mismatch", i)
		}
		if len(have.Engine.Relations) != len(want.Engine.Relations) {
			t.Fatalf("peer %d relations: %d vs %d", i, len(have.Engine.Relations), len(want.Engine.Relations))
		}
		for j := range want.Engine.Relations {
			if have.Engine.Relations[j].Name != want.Engine.Relations[j].Name {
				t.Errorf("relation name mismatch")
			}
			for k := range want.Engine.Relations[j].Tuples {
				if !have.Engine.Relations[j].Tuples[k].Equal(want.Engine.Relations[j].Tuples[k]) {
					t.Errorf("tuple mismatch at %d/%d", j, k)
				}
			}
		}
		for j := range want.Engine.Producers {
			if have.Engine.Producers[j].Txn != want.Engine.Producers[j].Txn ||
				!have.Engine.Producers[j].Tuple.Equal(want.Engine.Producers[j].Tuple) {
				t.Errorf("producer mismatch at %d", j)
			}
		}
	}
	if len(got.Residue) != len(snap.Residue) {
		t.Fatalf("residue: %d vs %d", len(got.Residue), len(snap.Residue))
	}
	for i := range snap.Residue {
		if got.Residue[i].Txn.ID != snap.Residue[i].Txn.ID ||
			len(got.Residue[i].Antecedents) != len(snap.Residue[i].Antecedents) {
			t.Errorf("residue %d mismatch", i)
		}
		for j, a := range snap.Residue[i].Antecedents {
			if got.Residue[i].Antecedents[j] != a {
				t.Errorf("residue %d antecedent %d mismatch", i, j)
			}
		}
	}
	if p := got.Peer("pq"); p == nil || p.Recno != 1 {
		t.Errorf("Peer lookup: %+v", p)
	}
	if got.Peer("nobody") != nil {
		t.Error("Peer lookup invented an entry")
	}
}

func TestSnapshotCodecErrors(t *testing.T) {
	payload := AppendSnapshot(nil, testSnapshot())
	if _, err := DecodeSnapshot(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := DecodeSnapshot([]byte{snapshotVersion + 1}); err == nil {
		t.Error("wrong version accepted")
	}
	for _, cut := range []int{1, 3, len(payload) / 2, len(payload) - 1} {
		if _, err := DecodeSnapshot(payload[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeSnapshot(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}
