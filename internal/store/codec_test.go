package store

import (
	"testing"

	"orchestra/internal/core"
)

func sampleBatch() []PublishedTxn {
	t1 := core.NewTransaction(core.TxnID{Origin: "alice", Seq: 7},
		core.Insert("F", core.Strs("rat", "p1", "fn"), "alice"),
		core.Modify("F", core.Strs("rat", "p1", "fn"), core.Strs("rat", "p1", "fn2"), "alice"))
	t1.Epoch = 12
	t1.Order = 12<<20 + 3
	t2 := core.NewTransaction(core.TxnID{Origin: "bob", Seq: 0},
		core.Delete("F", core.Strs("mouse", "p2", "x"), "bob"))
	t2.Epoch = 12
	t2.Order = 12<<20 + 4
	return []PublishedTxn{
		{Txn: t1, Antecedents: []core.TxnID{{Origin: "carol", Seq: 3}, {Origin: "bob", Seq: 1}}},
		{Txn: t2},
	}
}

// TestPayloadCodecRoundTrip: the hand-rolled publish-payload codec must
// reproduce every field gob used to carry — IDs, epochs, orders, all three
// update ops (including Modify's New tuple), and antecedent lists.
func TestPayloadCodecRoundTrip(t *testing.T) {
	in := sampleBatch()
	payload := AppendPublishedTxns(nil, in)
	out, err := DecodePublishedTxns(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d txns, want %d", len(out), len(in))
	}
	for i := range in {
		a, b := in[i].Txn, out[i].Txn
		if a.ID != b.ID || a.Epoch != b.Epoch || a.Order != b.Order {
			t.Errorf("txn %d header: got %v/%d/%d want %v/%d/%d", i, b.ID, b.Epoch, b.Order, a.ID, a.Epoch, a.Order)
		}
		if len(a.Updates) != len(b.Updates) {
			t.Fatalf("txn %d: %d updates, want %d", i, len(b.Updates), len(a.Updates))
		}
		for j := range a.Updates {
			ua, ub := a.Updates[j], b.Updates[j]
			if ua.Op != ub.Op || ua.Rel != ub.Rel || ua.Origin != ub.Origin {
				t.Errorf("txn %d update %d: %+v != %+v", i, j, ub, ua)
			}
			if ua.Tuple.Encode() != ub.Tuple.Encode() {
				t.Errorf("txn %d update %d tuple mismatch", i, j)
			}
			if (ua.New == nil) != (ub.New == nil) {
				t.Errorf("txn %d update %d New presence mismatch", i, j)
			} else if ua.New != nil && ua.New.Encode() != ub.New.Encode() {
				t.Errorf("txn %d update %d New mismatch", i, j)
			}
		}
		if len(in[i].Antecedents) != len(out[i].Antecedents) {
			t.Fatalf("txn %d: %d antecedents, want %d", i, len(out[i].Antecedents), len(in[i].Antecedents))
		}
		for j, id := range in[i].Antecedents {
			if out[i].Antecedents[j] != id {
				t.Errorf("txn %d antecedent %d: %v != %v", i, j, out[i].Antecedents[j], id)
			}
		}
	}
}

// TestPayloadCodecErrors: truncations and foreign version bytes must fail
// loudly, never decode garbage.
func TestPayloadCodecErrors(t *testing.T) {
	payload := AppendPublishedTxns(nil, sampleBatch())
	if _, err := DecodePublishedTxns(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := DecodePublishedTxns([]byte{99, 1}); err == nil {
		t.Error("unknown version accepted")
	}
	for _, cut := range []int{1, 2, len(payload) / 2, len(payload) - 1} {
		if _, err := DecodePublishedTxns(payload[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
