package store

import (
	"encoding/binary"
	"fmt"

	"orchestra/internal/core"
)

// payloadVersion tags the hand-rolled binary encoding of published
// batches. The central store previously stored batches as gob streams;
// gob's per-encoder type descriptors dominated the publish CPU profile, so
// batches are now encoded with this reflection-free codec. Old gob
// payloads are not migratable (the version byte makes the mismatch an
// explicit error).
const payloadVersion = 1

// AppendPublishedTxns encodes a published batch into a compact binary
// payload, appending to dst. The format is length-prefixed throughout:
// version byte, then each transaction as (origin, seq, epoch, order,
// updates, antecedents) with tuples in their canonical core encoding.
func AppendPublishedTxns(dst []byte, txns []PublishedTxn) []byte {
	dst = append(dst, payloadVersion)
	dst = binary.AppendUvarint(dst, uint64(len(txns)))
	str := func(s string) {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	for i := range txns {
		pt := &txns[i]
		x := pt.Txn
		str(string(x.ID.Origin))
		dst = binary.AppendUvarint(dst, x.ID.Seq)
		dst = binary.AppendUvarint(dst, uint64(x.Epoch))
		dst = binary.AppendUvarint(dst, x.Order)
		dst = binary.AppendUvarint(dst, uint64(len(x.Updates)))
		for j := range x.Updates {
			u := &x.Updates[j]
			dst = append(dst, byte(u.Op))
			str(u.Rel)
			str(string(u.Origin))
			str(u.Tuple.Encode())
			if u.New == nil {
				dst = append(dst, 0)
			} else {
				dst = append(dst, 1)
				str(u.New.Encode())
			}
		}
		dst = binary.AppendUvarint(dst, uint64(len(pt.Antecedents)))
		for _, a := range pt.Antecedents {
			str(string(a.Origin))
			dst = binary.AppendUvarint(dst, a.Seq)
		}
	}
	return dst
}

// payloadReader walks an encoded batch.
type payloadReader struct {
	b   []byte
	err error
}

func (r *payloadReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("store: truncated payload")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *payloadReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.err = fmt.Errorf("store: truncated payload string")
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *payloadReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.err = fmt.Errorf("store: truncated payload")
		return 0
	}
	c := r.b[0]
	r.b = r.b[1:]
	return c
}

// DecodePublishedTxns decodes a payload produced by AppendPublishedTxns.
func DecodePublishedTxns(payload []byte) ([]PublishedTxn, error) {
	r := &payloadReader{b: payload}
	if v := r.byte(); r.err == nil && v != payloadVersion {
		return nil, fmt.Errorf("store: payload version %d, want %d (pre-codec gob payloads have no migration path)", v, payloadVersion)
	}
	n := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	// Counts come from the payload; cap pre-allocations by the bytes that
	// remain (every element costs ≥1 encoded byte) so a corrupt varint
	// yields a decode error, not a giant allocation.
	capped := func(n uint64) int {
		if n > uint64(len(r.b)) {
			return len(r.b)
		}
		return int(n)
	}
	out := make([]PublishedTxn, 0, capped(n))
	for i := uint64(0); i < n && r.err == nil; i++ {
		x := &core.Transaction{}
		x.ID.Origin = core.PeerID(r.str())
		x.ID.Seq = r.uvarint()
		x.Epoch = core.Epoch(r.uvarint())
		x.Order = r.uvarint()
		nu := r.uvarint()
		if r.err != nil {
			break
		}
		x.Updates = make([]core.Update, 0, capped(nu))
		for j := uint64(0); j < nu && r.err == nil; j++ {
			u := core.Update{Op: core.Op(r.byte())}
			u.Rel = r.str()
			u.Origin = core.PeerID(r.str())
			tup, err := core.DecodeTuple(r.str())
			if err != nil && r.err == nil {
				r.err = err
			}
			u.Tuple = tup
			if r.byte() == 1 {
				newt, err := core.DecodeTuple(r.str())
				if err != nil && r.err == nil {
					r.err = err
				}
				u.New = newt
			}
			x.Updates = append(x.Updates, u)
		}
		na := r.uvarint()
		if r.err != nil {
			break
		}
		ants := make([]core.TxnID, 0, capped(na))
		for j := uint64(0); j < na && r.err == nil; j++ {
			id := core.TxnID{Origin: core.PeerID(r.str())}
			id.Seq = r.uvarint()
			ants = append(ants, id)
		}
		out = append(out, PublishedTxn{Txn: x, Antecedents: ants})
	}
	if r.err != nil {
		return nil, r.err
	}
	return out, nil
}
