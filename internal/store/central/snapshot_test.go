package central

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/reldb"
	"orchestra/internal/store"
	"orchestra/internal/store/storetest"
)

// snapshotHistory drives a small three-peer history with accepts and
// rejects against the store: pa's chain wins over pb's conflicting value at
// pq. It returns the peers keyed by ID.
func snapshotHistory(t *testing.T, s *Store, schema *core.Schema) map[core.PeerID]*store.Peer {
	t.Helper()
	ctx := context.Background()
	trustQ := storetest.TrustOrigins(map[core.PeerID]int{"pa": 2, "pb": 1})
	peers := map[core.PeerID]*store.Peer{}
	for _, id := range []core.PeerID{"pa", "pb"} {
		p, err := store.NewPeer(ctx, id, schema, storetest.TrustAll(1), s)
		if err != nil {
			t.Fatal(err)
		}
		peers[id] = p
	}
	pq, err := store.NewPeer(ctx, "pq", schema, trustQ, s)
	if err != nil {
		t.Fatal(err)
	}
	peers["pq"] = pq

	mustCycle := func(p *store.Peer) *core.Result {
		res, err := p.PublishAndReconcile(ctx)
		if err != nil {
			t.Fatalf("cycle %s: %v", p.ID(), err)
		}
		return res
	}
	if _, err := peers["pa"].Edit(core.Insert("F", core.Strs("rat", "p1", "v0"), "pa")); err != nil {
		t.Fatal(err)
	}
	if _, err := peers["pa"].Edit(core.Modify("F", core.Strs("rat", "p1", "v0"), core.Strs("rat", "p1", "v1"), "pa")); err != nil {
		t.Fatal(err)
	}
	mustCycle(peers["pa"])
	if _, err := peers["pb"].Edit(core.Insert("F", core.Strs("rat", "p1", "other"), "pb")); err != nil {
		t.Fatal(err)
	}
	mustCycle(peers["pb"])
	res := mustCycle(pq)
	if len(res.Accepted) != 2 || len(res.Rejected) != 1 {
		t.Fatalf("pq history outcome: %+v", res)
	}
	// Publishers catch up too, so every reconciliation frontier covers the
	// full history and compaction has room to run.
	mustCycle(peers["pa"])
	mustCycle(peers["pb"])
	return peers
}

// TestTornSnapshotCommitNeverVoidsTheLog: a crash that tears the WAL in the
// middle of a Snapshot() commit must roll the whole snapshot write back —
// the publish log keeps every transaction, the previously retained snapshot
// (if any) stays intact, and peers still rebuild.
func TestTornSnapshotCommitNeverVoidsTheLog(t *testing.T) {
	ctx := context.Background()
	schema := storetest.Schema(t)

	t.Run("FirstSnapshotTorn", func(t *testing.T) {
		dir := t.TempDir()
		s, err := Open(schema, dir)
		if err != nil {
			t.Fatal(err)
		}
		snapshotHistory(t, s, schema)
		txns := s.TxnCount()
		if _, err := s.Snapshot(ctx); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		tearLastWALRecord(t, dir)

		s2, err := Open(schema, dir)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		if got, err := s2.LatestSnapshot(ctx); err != nil || got != nil {
			t.Errorf("torn first snapshot survived: %v, %v", got, err)
		}
		if got := s2.TxnCount(); got != txns {
			t.Errorf("log lost transactions: %d, want %d", got, txns)
		}
		// Full replay still rebuilds everyone.
		trustQ := storetest.TrustOrigins(map[core.PeerID]int{"pa": 2, "pb": 1})
		rq, err := store.RebuildPeer(ctx, "pq", schema, trustQ, s2)
		if err != nil {
			t.Fatalf("rebuild after torn snapshot: %v", err)
		}
		if rq.Instance().Len("F") != 1 {
			t.Errorf("rebuilt instance: %v", rq.Instance().Tuples("F"))
		}
	})

	t.Run("ReplacementSnapshotTorn", func(t *testing.T) {
		dir := t.TempDir()
		s, err := Open(schema, dir)
		if err != nil {
			t.Fatal(err)
		}
		peers := snapshotHistory(t, s, schema)
		first, err := s.Snapshot(ctx)
		if err != nil || first == 0 {
			t.Fatalf("first snapshot: %d, %v", first, err)
		}
		if _, err := peers["pa"].Edit(core.Insert("F", core.Strs("mouse", "p2", "w"), "pa")); err != nil {
			t.Fatal(err)
		}
		if _, err := peers["pa"].PublishAndReconcile(ctx); err != nil {
			t.Fatal(err)
		}
		second, err := s.Snapshot(ctx)
		if err != nil || second <= first {
			t.Fatalf("second snapshot: %d, %v", second, err)
		}
		txns := s.TxnCount()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		tearLastWALRecord(t, dir)

		s2, err := Open(schema, dir)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		// The replacement commit (delete old + insert new) rolled back
		// whole: the first snapshot is still the retained one.
		if got := s2.SnapshotEpoch(); got != first {
			t.Errorf("retained snapshot epoch %d, want %d", got, first)
		}
		snap, err := s2.LatestSnapshot(ctx)
		if err != nil || snap == nil || snap.Epoch != first {
			t.Fatalf("latest snapshot: %+v, %v", snap, err)
		}
		if got := s2.TxnCount(); got != txns {
			t.Errorf("log lost transactions: %d, want %d", got, txns)
		}
		// Snapshot + tail and full replay still agree.
		trustQ := storetest.TrustOrigins(map[core.PeerID]int{"pa": 2, "pb": 1})
		viaSnap, err := store.RebuildPeer(ctx, "pq", schema, trustQ, s2)
		if err != nil {
			t.Fatal(err)
		}
		viaFull, err := store.FullReplayRebuild(ctx, "pq", schema, trustQ, s2)
		if err != nil {
			t.Fatal(err)
		}
		if !viaSnap.Instance().Equal(viaFull.Instance()) {
			t.Error("snapshot and full-replay rebuilds diverged after torn replacement")
		}
	})
}

// TestCompactionSurvivesReopen: compaction's row drops and the retained
// snapshot must be equivalent across a reopen — rebuilt peers identical,
// dropped epochs really gone from every shard's tables, the log writable.
func TestCompactionSurvivesReopen(t *testing.T) {
	ctx := context.Background()
	schema := storetest.Schema(t)
	dir := t.TempDir()
	s, err := Open(schema, dir, WithTableShards(4))
	if err != nil {
		t.Fatal(err)
	}
	peers := snapshotHistory(t, s, schema)
	horizon, err := s.Snapshot(ctx)
	if err != nil || horizon == 0 {
		t.Fatalf("snapshot: %d, %v", horizon, err)
	}
	if err := s.CompactBefore(ctx, horizon); err != nil {
		t.Fatalf("compact: %v", err)
	}
	// Tail beyond the horizon.
	if _, err := peers["pa"].Edit(core.Insert("F", core.Strs("mouse", "p2", "w"), "pa")); err != nil {
		t.Fatal(err)
	}
	if _, err := peers["pa"].PublishAndReconcile(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := peers["pq"].PublishAndReconcile(ctx); err != nil {
		t.Fatal(err)
	}

	trustQ := storetest.TrustOrigins(map[core.PeerID]int{"pa": 2, "pb": 1})
	pre, err := store.RebuildPeer(ctx, "pq", schema, trustQ, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.CompactedBefore(); got != horizon {
		t.Errorf("recovered compaction horizon %d, want %d", got, horizon)
	}
	if got := s2.SnapshotEpoch(); got != horizon {
		t.Errorf("recovered snapshot epoch %d, want %d", got, horizon)
	}
	// No shard's tables retain rows at or below the horizon.
	err = s2.db.View(func(tx *reldb.Tx) error {
		for k := 0; k < s2.tableShards; k++ {
			if err := tx.Scan(s2.epochsTab[k], func(r reldb.Row) bool {
				if core.Epoch(r[0].I()) <= horizon {
					t.Errorf("%s retains epoch %d <= horizon %d", s2.epochsTab[k], r[0].I(), horizon)
				}
				return true
			}); err != nil {
				return err
			}
			if err := tx.Scan(s2.txnsTab[k], func(r reldb.Row) bool {
				if core.Epoch(r[1].I()) <= horizon {
					t.Errorf("%s retains a payload for epoch %d <= horizon %d", s2.txnsTab[k], r[1].I(), horizon)
				}
				return true
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Full replay is gone for snapshot-covered peers — by design, with a
	// pointed error — but the snapshot + tail rebuild matches the
	// pre-reopen rebuild exactly.
	if _, _, err := s2.ReplayFor(ctx, "pq"); err == nil || !strings.Contains(err.Error(), "compacted") {
		t.Errorf("ReplayFor after compaction: %v, want compaction error", err)
	}
	post, err := store.RebuildPeer(ctx, "pq", schema, trustQ, s2)
	if err != nil {
		t.Fatal(err)
	}
	if !post.Instance().Equal(pre.Instance()) {
		t.Errorf("reopened rebuild diverged: %v vs %v",
			post.Instance().Tuples("F"), pre.Instance().Tuples("F"))
	}
	// The log stays writable and deliverable.
	if err := s2.RegisterPeer(ctx, "pa", storetest.TrustAll(1)); err != nil {
		t.Fatal(err)
	}
	batch := []store.PublishedTxn{{Txn: core.NewTransaction(
		core.TxnID{Origin: "pa", Seq: 100},
		core.Insert("F", core.Strs("dog", "p3", "q"), "pa"))}}
	if _, err := s2.Publish(ctx, "pa", batch); err != nil {
		t.Fatalf("publish after compacted reopen: %v", err)
	}
}

// TestCompactionRefusals: every safety invariant turns into an explicit
// error — no snapshot, past the snapshot, past a peer's reconciliation
// frontier, and a registered peer the snapshot does not cover.
func TestCompactionRefusals(t *testing.T) {
	ctx := context.Background()
	schema := storetest.Schema(t)
	s := MustOpenMemory(schema)
	defer s.Close()

	if err := s.CompactBefore(ctx, 1); err == nil || !strings.Contains(err.Error(), "snapshot") {
		t.Errorf("compaction without snapshot: %v", err)
	}

	// laggard is registered before the snapshot but never reconciles: its
	// frontier pins the horizon at 0.
	if err := s.RegisterPeer(ctx, "laggard", storetest.TrustAll(1)); err != nil {
		t.Fatal(err)
	}
	peers := snapshotHistory(t, s, schema)
	epoch, err := s.Snapshot(ctx)
	if err != nil || epoch == 0 {
		t.Fatalf("snapshot: %d, %v", epoch, err)
	}
	if err := s.CompactBefore(ctx, epoch+1); err == nil || !strings.Contains(err.Error(), "past the retained snapshot") {
		t.Errorf("compaction past snapshot: %v", err)
	}
	if err := s.CompactBefore(ctx, epoch); err == nil || !strings.Contains(err.Error(), "frontier") {
		t.Errorf("compaction past laggard's frontier: %v", err)
	}
	if got := s.CompactionHorizon(); got != 0 {
		t.Errorf("horizon with an unreconciled peer = %d, want 0", got)
	}
	// The laggard catches up; now a freshly registered peer (not covered by
	// the retained snapshot) blocks compaction instead.
	if _, err := s.BeginReconciliation(ctx, "laggard"); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordDecisions(ctx, "laggard", 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.CompactionHorizon(); got != epoch {
		t.Errorf("horizon after laggard caught up = %d, want %d", got, epoch)
	}
	if err := s.RegisterPeer(ctx, "newcomer", storetest.TrustAll(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.CompactBefore(ctx, epoch); err == nil || !strings.Contains(err.Error(), "not covered") {
		t.Errorf("compaction with uncovered peer: %v", err)
	}
	if got := s.CompactionHorizon(); got != 0 {
		t.Errorf("horizon with uncovered peer = %d, want 0", got)
	}
	// A fresh snapshot covers everyone; once the newcomer reconciles, its
	// frontier reaches the stable epoch and compaction goes through.
	if _, err := s.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BeginReconciliation(ctx, "newcomer"); err != nil {
		t.Fatal(err)
	}
	if got := s.CompactionHorizon(); got < epoch {
		t.Errorf("horizon after covering snapshot = %d, want >= %d", got, epoch)
	}
	if err := s.CompactBefore(ctx, s.CompactionHorizon()); err != nil {
		t.Errorf("compaction after covering snapshot: %v", err)
	}
	_ = peers
}

// TestLateDecisionOnCompactedEpoch is the residue invariant end-to-end: a
// transaction deferred before the snapshot is undecided, so its payload
// rides the snapshot's residue through compaction; when the peer later
// resolves the conflict, the accept/reject lands on a compacted epoch — and
// a snapshot + tail rebuild still reproduces the resolved state exactly.
func TestLateDecisionOnCompactedEpoch(t *testing.T) {
	ctx := context.Background()
	schema := storetest.Schema(t)
	s := MustOpenMemory(schema)
	defer s.Close()

	pa, _ := store.NewPeer(ctx, "pa", schema, storetest.TrustAll(1), s)
	pb, _ := store.NewPeer(ctx, "pb", schema, storetest.TrustAll(1), s)
	pq, err := store.NewPeer(ctx, "pq", schema, storetest.TrustAll(1), s)
	if err != nil {
		t.Fatal(err)
	}
	xa, err := pa.Edit(core.Insert("F", core.Strs("rat", "p1", "va"), "pa"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pa.PublishAndReconcile(ctx); err != nil {
		t.Fatal(err)
	}
	xb, err := pb.Edit(core.Insert("F", core.Strs("rat", "p1", "vb"), "pb"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pb.PublishAndReconcile(ctx); err != nil {
		t.Fatal(err)
	}
	// Equal priorities tie: pq defers both — undecided, so both stay in
	// the snapshot residue.
	res, err := pq.PublishAndReconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deferred) != 2 {
		t.Fatalf("expected a two-way tie, got %+v", res)
	}
	// pa and pb catch up so their frontiers clear the compaction horizon.
	if _, err := pa.PublishAndReconcile(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := pb.PublishAndReconcile(ctx); err != nil {
		t.Fatal(err)
	}

	epoch, err := s.Snapshot(ctx)
	if err != nil || epoch == 0 {
		t.Fatalf("snapshot: %d, %v", epoch, err)
	}
	snap, err := s.LatestSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := map[core.TxnID]bool{}
	for _, pt := range snap.Residue {
		found[pt.Txn.ID] = true
	}
	if !found[xa.ID] || !found[xb.ID] {
		t.Fatalf("undecided transactions missing from residue: %v", snap.Residue)
	}
	if err := s.CompactBefore(ctx, epoch); err != nil {
		t.Fatalf("compact: %v", err)
	}

	// The late decision: pq resolves the tie in favor of pa — an accept
	// and a reject recorded for transactions whose epochs are compacted.
	groups := pq.Engine().ConflictGroups()
	if len(groups) != 1 {
		t.Fatalf("conflict groups: %v", groups)
	}
	winner := -1
	for i, o := range groups[0].Options {
		for _, id := range o.Txns {
			if id == xa.ID {
				winner = i
			}
		}
	}
	if _, err := pq.Resolve(ctx, groups[0].Conflict, winner); err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if !pq.Engine().Applied(xa.ID) || !pq.Engine().Rejected(xb.ID) {
		t.Fatalf("resolution did not land: %+v", pq.Engine())
	}

	// Rebuild from the compacted store: the snapshot has no trace of the
	// resolution, the decision rows point at compacted epochs, and the
	// payloads exist only in the residue — the rebuilt peer must still
	// carry the resolved state.
	rq, err := store.RebuildPeer(ctx, "pq", schema, storetest.TrustAll(1), s)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if !rq.Engine().Applied(xa.ID) {
		t.Error("rebuilt peer lost the late accept on a compacted epoch")
	}
	if !rq.Engine().Rejected(xb.ID) {
		t.Error("rebuilt peer lost the late reject on a compacted epoch")
	}
	if !rq.Instance().Equal(pq.Instance()) {
		t.Errorf("rebuilt instance %v, want %v", rq.Instance().Tuples("F"), pq.Instance().Tuples("F"))
	}
}

// TestSnapshotWithSelfAcceptAboveStable: a peer can hold self-accept
// decisions on a *finished* epoch the stable frontier has not reached yet
// (an earlier epoch is still open, via the split publish API). The
// snapshot is taken at the stable boundary, so those decisions must stay
// out of the folded prefix — in the tail, where ReplayFrom pairs them
// with their payloads — or a rebuild silently loses the peer's own
// transaction.
func TestSnapshotWithSelfAcceptAboveStable(t *testing.T) {
	ctx := context.Background()
	schema := storetest.Schema(t)
	s := MustOpenMemory(schema)
	defer s.Close()
	for _, id := range []core.PeerID{"pa", "pb"} {
		if err := s.RegisterPeer(ctx, id, storetest.TrustAll(1)); err != nil {
			t.Fatal(err)
		}
	}
	publish := func(peer core.PeerID, seq uint64, prot string) core.TxnID {
		t.Helper()
		x := core.NewTransaction(core.TxnID{Origin: peer, Seq: seq},
			core.Insert("F", core.Strs(string(peer), prot, "fn"), peer))
		if _, err := s.Publish(ctx, peer, []store.PublishedTxn{{Txn: x}}); err != nil {
			t.Fatal(err)
		}
		return x.ID
	}
	early := publish("pa", 0, "stable") // epoch 1, finished: the stable frontier
	// pb holds epoch 2 open, then pa finishes epoch 3 above it.
	open, err := s.PublishBegin("pb")
	if err != nil {
		t.Fatal(err)
	}
	late := publish("pa", 1, "above-stable") // epoch 3, finished but unstable
	if got := s.stableEpoch(); got != 1 {
		t.Fatalf("stable = %d, want 1 (epoch %d still open)", got, open)
	}

	epoch, err := s.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("snapshot epoch = %d, want 1", epoch)
	}
	snap, err := s.LatestSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ps := snap.Peer("pa")
	if ps == nil {
		t.Fatal("pa missing from snapshot")
	}
	for _, id := range ps.Engine.Applied {
		if id == late {
			t.Fatalf("snapshot folded a decision above its epoch: %v", ps.Engine.Applied)
		}
	}

	// The open epoch closes; pa is rebuilt from snapshot + tail and must
	// have BOTH its transactions — the one below and the one above the
	// snapshot boundary.
	xb := core.NewTransaction(core.TxnID{Origin: "pb", Seq: 0},
		core.Insert("F", core.Strs("pb", "mid", "fn"), "pb"))
	if err := s.PublishWrite("pb", open, []store.PublishedTxn{{Txn: xb}}); err != nil {
		t.Fatal(err)
	}
	if err := s.PublishFinish("pb", open); err != nil {
		t.Fatal(err)
	}
	ra, err := store.RebuildPeer(ctx, "pa", schema, storetest.TrustAll(1), s)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []core.TxnID{early, late} {
		if !ra.Engine().Applied(id) {
			t.Errorf("rebuilt pa lost its own transaction %s", id)
		}
	}
	if got := ra.Instance().Len("F"); got != 2 {
		t.Errorf("rebuilt pa instance has %d tuples, want 2: %v", got, ra.Instance().Tuples("F"))
	}
}

// TestAutoMaintenance: WithSnapshotEvery + WithCompactKeep run the
// snapshot/compaction policy from the publish path, without explicit calls.
func TestAutoMaintenance(t *testing.T) {
	ctx := context.Background()
	schema := storetest.Schema(t)
	s, err := Open(schema, "", WithSnapshotEvery(2), WithCompactKeep(0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	pa, _ := store.NewPeer(ctx, "pa", schema, storetest.TrustAll(1), s)
	pb, _ := store.NewPeer(ctx, "pb", schema, storetest.TrustAll(1), s)
	for i := 0; i < 4; i++ {
		for j, p := range []*store.Peer{pa, pb} {
			if _, err := p.Edit(core.Insert("F",
				core.Strs("org", fmt.Sprintf("prot-%d-%d", i, j), "fn"), p.ID())); err != nil {
				t.Fatal(err)
			}
			if _, err := p.PublishAndReconcile(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.SnapshotEpoch() == 0 {
		t.Error("automatic snapshot never ran")
	}
	if s.CompactedBefore() == 0 {
		t.Error("automatic compaction never ran")
	}
	snap := s.Metrics().Snapshot()
	if snap.Snapshots == 0 || snap.Compactions == 0 {
		t.Errorf("maintenance counters: %+v", snap)
	}
}
