package central

import (
	"context"
	"strings"
	"testing"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/store"
	"orchestra/internal/store/storetest"
)

// TestCompactionRefusesLaggingWatcher: CompactBefore's fourth refusal rule.
// An attached subscription whose cursor has not passed the requested epoch
// pins the history — compacting it away would make the watcher's resume
// cursor unservable — and once the subscriber catches up, the same
// compaction goes through.
func TestCompactionRefusesLaggingWatcher(t *testing.T) {
	schema := storetest.Schema(t)
	s := MustOpenMemory(schema)
	defer s.Close()
	ctx := context.Background()
	pa, err := store.NewPeer(ctx, "pa", schema, storetest.TrustAll(1), s)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{"p1", "p2", "p3"} {
		if _, err := pa.Edit(core.Insert("F", core.Strs("rat", fn, "v"), "pa")); err != nil {
			t.Fatal(err)
		}
		if _, err := pa.PublishAndReconcile(ctx); err != nil {
			t.Fatal(err)
		}
	}
	snapEpoch, err := s.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// A subscriber attaches at the beginning of history and does not consume
	// anything yet: its cursor (0) lags the snapshot.
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch, err := s.WatchFrom(wctx, 0)
	if err != nil {
		t.Fatal(err)
	}

	err = s.CompactBefore(ctx, snapEpoch)
	if err == nil {
		t.Fatal("CompactBefore succeeded past a lagging watcher's cursor")
	}
	if !strings.Contains(err.Error(), "watcher") {
		t.Errorf("refusal does not name the watcher: %v", err)
	}
	// The auto-compaction horizon is clamped the same way, so background
	// maintenance never trips the refusal.
	if h := s.CompactionHorizon(); h > 0 {
		t.Errorf("CompactionHorizon = %d with a watcher parked at 0", h)
	}

	// Catch up: consume events until the cursor passes the snapshot. The
	// cursor advances after each delivery, so compaction may trail the last
	// receive by an instant — retry briefly instead of asserting the race.
	var cursor core.Epoch
	for cursor < snapEpoch {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatal("subscription closed during catch-up")
			}
			cursor = ev.To
		case <-time.After(10 * time.Second):
			t.Fatalf("no event beyond cursor %d (want %d)", cursor, snapEpoch)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := s.CompactBefore(ctx, snapEpoch); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("CompactBefore still refused after catch-up: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}
