package central

import (
	"context"
	"fmt"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/store"
)

// benchTxnsPerPublish is the batch size each publisher ships per round; small
// enough that per-publish overhead (epoch allocation, commit) stays visible,
// large enough that payload encoding matters.
const benchTxnsPerPublish = 4

// genBatches builds one fresh batch of unique transactions per publisher,
// outside the benchmark timer. Each publisher owns an engine so the
// transactions carry real provenance and encodings.
func genBatches(b *testing.B, engines []*core.Engine, round int) [][]store.PublishedTxn {
	b.Helper()
	out := make([][]store.PublishedTxn, len(engines))
	for p, eng := range engines {
		batch := make([]store.PublishedTxn, 0, benchTxnsPerPublish)
		for k := 0; k < benchTxnsPerPublish; k++ {
			x, err := eng.NewLocalTransaction(core.Insert("F",
				core.Strs(fmt.Sprintf("org%d", p), fmt.Sprintf("prot-%d-%d", round, k), "fn"),
				eng.Peer()))
			if err != nil {
				b.Fatal(err)
			}
			batch = append(batch, store.PublishedTxn{Txn: x, Antecedents: eng.LocalAntecedents(x.ID)})
		}
		out[p] = batch
	}
	return out
}

// BenchmarkConcurrentPublish measures publish throughput with P publishers
// racing into one store. One op = P publishers each shipping one batch of
// benchTxnsPerPublish transactions; the per-transaction cost is reported as
// the custom ns/txn metric.
func BenchmarkConcurrentPublish(b *testing.B) {
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	ctx := context.Background()
	for _, pubs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("publishers=%d", pubs), func(b *testing.B) {
			s := MustOpenMemory(schema)
			defer s.Close()
			engines := make([]*core.Engine, pubs)
			for p := 0; p < pubs; p++ {
				id := core.PeerID(fmt.Sprintf("pub%d", p))
				engines[p] = core.NewEngine(id, schema, core.TrustAll(1))
				if err := s.RegisterPeer(ctx, id, core.TrustAll(1)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				batches := genBatches(b, engines, i)
				errs := make([]error, pubs)
				b.StartTimer()
				done := make(chan int, pubs)
				for p := 0; p < pubs; p++ {
					go func(p int) {
						_, errs[p] = s.Publish(ctx, engines[p].Peer(), batches[p])
						done <- p
					}(p)
				}
				for p := 0; p < pubs; p++ {
					<-done
				}
				b.StopTimer()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*pubs*benchTxnsPerPublish), "ns/txn")
		})
	}
}
