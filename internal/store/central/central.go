// Package central implements the centralized update store of §5.2.1 on top
// of the reldb relational engine (standing in for the commercial RDBMS the
// paper used). An epoch sequence timestamps each published batch; because
// publishing is not instantaneous, each peer records when it starts and
// finishes publishing, and a reconciling peer uses the latest epoch not
// preceded by an unfinished epoch as its reconciliation point. Trust
// predicates and update extensions are evaluated inside the store, so only
// relevant transactions travel to the client.
package central

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"orchestra/internal/core"
	"orchestra/internal/reldb"
	"orchestra/internal/rpc"
	"orchestra/internal/store"
)

// OrderStride spaces the global order values of consecutive epochs; both
// store implementations assign Order = epoch*OrderStride + position so
// their orderings agree exactly.
const OrderStride = 1 << 20

// Store is the centralized update store.
type Store struct {
	mu     sync.Mutex
	db     *reldb.DB
	schema *core.Schema

	txns    map[core.TxnID]*entry
	ordered []*entry
	epochs  map[core.Epoch]*epochMeta
	maxE    core.Epoch
	peers   map[core.PeerID]*peerMeta
}

type entry struct {
	pub   store.PublishedTxn
	epoch core.Epoch
}

type epochMeta struct {
	peer     core.PeerID
	finished bool
	txns     []core.TxnID
}

type peerMeta struct {
	trust     core.Trust
	lastEpoch core.Epoch
	recno     int
	decided   map[core.TxnID]core.Decision
	// decidedSeq orders the peer's decisions: the valid replay order for
	// reconstruction (store.Replayer).
	decidedSeq map[core.TxnID]int64
	nextSeq    int64
}

// recordDecisionLocked updates the decision caches.
func (pm *peerMeta) recordDecisionLocked(id core.TxnID, d core.Decision) int64 {
	pm.nextSeq++
	pm.decided[id] = d
	pm.decidedSeq[id] = pm.nextSeq
	return pm.nextSeq
}

// Open creates (or recovers) a store. dir == "" keeps everything in memory.
func Open(schema *core.Schema, dir string) (*Store, error) {
	db, err := reldb.Open(reldb.Options{Dir: dir})
	if err != nil {
		return nil, err
	}
	s := &Store{
		db:     db,
		schema: schema,
		txns:   make(map[core.TxnID]*entry),
		epochs: make(map[core.Epoch]*epochMeta),
		peers:  make(map[core.PeerID]*peerMeta),
	}
	if err := s.initTables(); err != nil {
		db.Close()
		return nil, err
	}
	if err := s.loadCaches(); err != nil {
		db.Close()
		return nil, err
	}
	return s, nil
}

// MustOpenMemory opens an in-memory store or panics.
func MustOpenMemory(schema *core.Schema) *Store {
	s, err := Open(schema, "")
	if err != nil {
		panic(err)
	}
	return s
}

// Close closes the backing database.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Close()
}

func (s *Store) initTables() error {
	return s.db.Update(func(tx *reldb.Tx) error {
		create := func(def reldb.TableDef) error {
			if tx.HasTable(def.Name) {
				return nil
			}
			return tx.CreateTable(def)
		}
		if err := create(reldb.TableDef{
			Name: "epochs",
			Cols: []reldb.ColDef{
				{Name: "epoch", Type: reldb.ColInt},
				{Name: "peer", Type: reldb.ColString},
				{Name: "finished", Type: reldb.ColBool},
			},
			Key: []int{0},
		}); err != nil {
			return err
		}
		if err := create(reldb.TableDef{
			Name: "txns",
			Cols: []reldb.ColDef{
				{Name: "ord", Type: reldb.ColInt},
				{Name: "origin", Type: reldb.ColString},
				{Name: "seq", Type: reldb.ColInt},
				{Name: "epoch", Type: reldb.ColInt},
				{Name: "payload", Type: reldb.ColBytes},
			},
			Key: []int{0},
			Indexes: []reldb.IndexDef{
				{Name: "by_epoch", Cols: []int{3}},
			},
		}); err != nil {
			return err
		}
		if err := create(reldb.TableDef{
			Name: "peers",
			Cols: []reldb.ColDef{
				{Name: "peer", Type: reldb.ColString},
				{Name: "last_epoch", Type: reldb.ColInt},
				{Name: "recno", Type: reldb.ColInt},
			},
			Key: []int{0},
		}); err != nil {
			return err
		}
		return create(reldb.TableDef{
			Name: "decisions",
			Cols: []reldb.ColDef{
				{Name: "peer", Type: reldb.ColString},
				{Name: "origin", Type: reldb.ColString},
				{Name: "seq", Type: reldb.ColInt},
				{Name: "decision", Type: reldb.ColInt},
				{Name: "dseq", Type: reldb.ColInt},
			},
			Key: []int{0, 1, 2},
		})
	})
}

// loadCaches rebuilds the in-memory indexes from the tables after recovery.
func (s *Store) loadCaches() error {
	return s.db.View(func(tx *reldb.Tx) error {
		if err := tx.Scan("epochs", func(r reldb.Row) bool {
			e := core.Epoch(r[0].I())
			s.epochs[e] = &epochMeta{peer: core.PeerID(r[1].S()), finished: r[2].B()}
			if e > s.maxE {
				s.maxE = e
			}
			return true
		}); err != nil {
			return err
		}
		var scanErr error
		if err := tx.Scan("txns", func(r reldb.Row) bool {
			var pub store.PublishedTxn
			if err := rpc.Decode(r[4].Raw(), &pub); err != nil {
				scanErr = err
				return false
			}
			// Gob decoding drops the unexported caches; re-warm before the
			// recovered transactions are shared across reconciling peers.
			pub.Txn.PrecomputeEncodings(s.schema)
			en := &entry{pub: pub, epoch: core.Epoch(r[3].I())}
			s.txns[pub.Txn.ID] = en
			s.ordered = append(s.ordered, en)
			if em := s.epochs[en.epoch]; em != nil {
				em.txns = append(em.txns, pub.Txn.ID)
			}
			return true
		}); err != nil {
			return err
		}
		if scanErr != nil {
			return scanErr
		}
		sort.Slice(s.ordered, func(i, j int) bool {
			return s.ordered[i].pub.Txn.Order < s.ordered[j].pub.Txn.Order
		})
		if err := tx.Scan("peers", func(r reldb.Row) bool {
			s.peers[core.PeerID(r[0].S())] = &peerMeta{
				lastEpoch:  core.Epoch(r[1].I()),
				recno:      int(r[2].I()),
				decided:    make(map[core.TxnID]core.Decision),
				decidedSeq: make(map[core.TxnID]int64),
			}
			return true
		}); err != nil {
			return err
		}
		return tx.Scan("decisions", func(r reldb.Row) bool {
			pm := s.peers[core.PeerID(r[0].S())]
			if pm == nil {
				return true
			}
			id := core.TxnID{Origin: core.PeerID(r[1].S()), Seq: uint64(r[2].I())}
			pm.decided[id] = core.Decision(r[3].I())
			pm.decidedSeq[id] = r[4].I()
			if r[4].I() > pm.nextSeq {
				pm.nextSeq = r[4].I()
			}
			return true
		})
	})
}

// RegisterPeer implements store.Store. Re-registering an existing peer
// (e.g. after recovery) replaces its trust policy and keeps its history.
func (s *Store) RegisterPeer(_ context.Context, peer core.PeerID, trust core.Trust) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if pm, ok := s.peers[peer]; ok {
		pm.trust = trust
		return nil
	}
	err := s.db.Update(func(tx *reldb.Tx) error {
		return tx.Insert("peers", reldb.Row{reldb.Str(string(peer)), reldb.Int(0), reldb.Int(0)})
	})
	if err != nil {
		return err
	}
	s.peers[peer] = &peerMeta{
		trust:      trust,
		decided:    make(map[core.TxnID]core.Decision),
		decidedSeq: make(map[core.TxnID]int64),
	}
	return nil
}

// PublishBegin allocates an epoch and records that the peer has started
// publishing into it. Exposed separately so tests and the failure-injection
// benchmarks can hold an epoch open.
func (s *Store) PublishBegin(peer core.PeerID) (core.Epoch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.peers[peer]; !ok {
		return 0, fmt.Errorf("%w: %s", store.ErrUnknownPeer, peer)
	}
	var epoch core.Epoch
	err := s.db.Update(func(tx *reldb.Tx) error {
		e, err := tx.NextSeq("epoch")
		if err != nil {
			return err
		}
		epoch = core.Epoch(e)
		return tx.Insert("epochs", reldb.Row{reldb.Int(e), reldb.Str(string(peer)), reldb.Bool(false)})
	})
	if err != nil {
		return 0, err
	}
	s.epochs[epoch] = &epochMeta{peer: peer}
	if epoch > s.maxE {
		s.maxE = epoch
	}
	return epoch, nil
}

// PublishWrite appends the batch's transactions under the open epoch,
// assigning global orders, and records them as accepted by the publisher.
func (s *Store) PublishWrite(peer core.PeerID, epoch core.Epoch, txns []store.PublishedTxn) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	em, ok := s.epochs[epoch]
	if !ok || em.peer != peer {
		return fmt.Errorf("central: epoch %d not open for %s", epoch, peer)
	}
	if em.finished {
		return fmt.Errorf("central: epoch %d already finished", epoch)
	}
	pm := s.peers[peer]
	err := s.db.Update(func(tx *reldb.Tx) error {
		for i, pt := range txns {
			pt.Txn.Epoch = epoch
			pt.Txn.Order = uint64(epoch)*OrderStride + uint64(i)
			payload, err := rpc.Encode(&pt)
			if err != nil {
				return err
			}
			if err := tx.Insert("txns", reldb.Row{
				reldb.Int(int64(pt.Txn.Order)),
				reldb.Str(string(pt.Txn.ID.Origin)),
				reldb.Int(int64(pt.Txn.ID.Seq)),
				reldb.Int(int64(epoch)),
				reldb.Bytes(payload),
			}); err != nil {
				return err
			}
			if err := tx.Insert("decisions", reldb.Row{
				reldb.Str(string(peer)),
				reldb.Str(string(pt.Txn.ID.Origin)),
				reldb.Int(int64(pt.Txn.ID.Seq)),
				reldb.Int(int64(core.DecisionAccept)),
				reldb.Int(pm.nextSeq + int64(i) + 1),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, pt := range txns {
		// Warm the encoding caches under the store mutex: BeginReconciliation
		// hands these *Transaction pointers to every peer, and concurrently
		// reconciling engines must never lazily populate a shared cache.
		pt.Txn.PrecomputeEncodings(s.schema)
		en := &entry{pub: pt, epoch: epoch}
		s.txns[pt.Txn.ID] = en
		s.ordered = append(s.ordered, en)
		em.txns = append(em.txns, pt.Txn.ID)
		pm.recordDecisionLocked(pt.Txn.ID, core.DecisionAccept)
	}
	return nil
}

// PublishFinish marks the epoch complete, making it visible to stable-epoch
// computation.
func (s *Store) PublishFinish(peer core.PeerID, epoch core.Epoch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	em, ok := s.epochs[epoch]
	if !ok || em.peer != peer {
		return fmt.Errorf("central: epoch %d not open for %s", epoch, peer)
	}
	err := s.db.Update(func(tx *reldb.Tx) error {
		return tx.Upsert("epochs", reldb.Row{reldb.Int(int64(epoch)), reldb.Str(string(peer)), reldb.Bool(true)})
	})
	if err != nil {
		return err
	}
	em.finished = true
	return nil
}

// Publish implements store.Store: begin, write, finish.
func (s *Store) Publish(_ context.Context, peer core.PeerID, txns []store.PublishedTxn) (core.Epoch, error) {
	if len(txns) == 0 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, ok := s.peers[peer]; !ok {
			return 0, fmt.Errorf("%w: %s", store.ErrUnknownPeer, peer)
		}
		return s.maxE, nil
	}
	epoch, err := s.PublishBegin(peer)
	if err != nil {
		return 0, err
	}
	if err := s.PublishWrite(peer, epoch, txns); err != nil {
		return 0, err
	}
	if err := s.PublishFinish(peer, epoch); err != nil {
		return 0, err
	}
	return epoch, nil
}

// stableEpochLocked returns the most recent epoch not preceded by an
// unfinished epoch.
func (s *Store) stableEpochLocked() core.Epoch {
	var stable core.Epoch
	for e := core.Epoch(1); e <= s.maxE; e++ {
		em, ok := s.epochs[e]
		if !ok || !em.finished {
			break
		}
		stable = e
	}
	return stable
}

// BeginReconciliation implements store.Store.
func (s *Store) BeginReconciliation(_ context.Context, peer core.PeerID) (*store.Reconciliation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pm, ok := s.peers[peer]
	if !ok {
		return nil, fmt.Errorf("%w: %s", store.ErrUnknownPeer, peer)
	}
	stable := s.stableEpochLocked()
	from := pm.lastEpoch
	if stable < from {
		stable = from
	}
	recno := pm.recno + 1
	// Record the reconciliation point immediately and commit, as §5.2.1
	// prescribes, so the epochs table is released for publishers.
	err := s.db.Update(func(tx *reldb.Tx) error {
		return tx.Upsert("peers", reldb.Row{
			reldb.Str(string(peer)), reldb.Int(int64(stable)), reldb.Int(int64(recno)),
		})
	})
	if err != nil {
		return nil, err
	}
	pm.lastEpoch = stable
	pm.recno = recno

	rec := &store.Reconciliation{Recno: recno, FromEpoch: from, ToEpoch: stable}
	for _, en := range s.ordered {
		if en.epoch <= from || en.epoch > stable {
			continue
		}
		x := en.pub.Txn
		if x.ID.Origin == peer {
			continue
		}
		if _, decided := pm.decided[x.ID]; decided {
			continue
		}
		prio := core.TxnPriority(pm.trust, x)
		if prio <= 0 {
			continue
		}
		rec.Candidates = append(rec.Candidates, &core.Candidate{
			Txn:      x,
			Priority: prio,
			Ext:      s.extensionLocked(x.ID, pm),
		})
	}
	return rec, nil
}

// extensionLocked computes the transaction extension of root for the peer:
// the antecedent closure excluding transactions the peer has accepted,
// sorted by global order.
func (s *Store) extensionLocked(root core.TxnID, pm *peerMeta) []*core.Transaction {
	visited := map[core.TxnID]bool{root: true}
	var out []*core.Transaction
	stack := []core.TxnID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		en, ok := s.txns[id]
		if !ok {
			continue // antecedent from before this store's history
		}
		if id != root && pm.decided[id] == core.DecisionAccept {
			continue
		}
		out = append(out, en.pub.Txn)
		for _, a := range en.pub.Antecedents {
			if !visited[a] {
				visited[a] = true
				stack = append(stack, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	return out
}

// RecordDecisions implements store.Store.
func (s *Store) RecordDecisions(_ context.Context, peer core.PeerID, recno int, accepted, rejected []core.TxnID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	pm, ok := s.peers[peer]
	if !ok {
		return fmt.Errorf("%w: %s", store.ErrUnknownPeer, peer)
	}
	if recno > pm.recno {
		return fmt.Errorf("central: decisions for future reconciliation %d (current %d)", recno, pm.recno)
	}
	err := s.db.Update(func(tx *reldb.Tx) error {
		dseq := pm.nextSeq
		put := func(id core.TxnID, d core.Decision) error {
			dseq++
			return tx.Upsert("decisions", reldb.Row{
				reldb.Str(string(peer)),
				reldb.Str(string(id.Origin)),
				reldb.Int(int64(id.Seq)),
				reldb.Int(int64(d)),
				reldb.Int(dseq),
			})
		}
		for _, id := range accepted {
			if err := put(id, core.DecisionAccept); err != nil {
				return err
			}
		}
		for _, id := range rejected {
			if err := put(id, core.DecisionReject); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, id := range accepted {
		pm.recordDecisionLocked(id, core.DecisionAccept)
	}
	for _, id := range rejected {
		pm.recordDecisionLocked(id, core.DecisionReject)
	}
	return nil
}

// CurrentRecno implements store.Store.
func (s *Store) CurrentRecno(_ context.Context, peer core.PeerID) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pm, ok := s.peers[peer]
	if !ok {
		return 0, fmt.Errorf("%w: %s", store.ErrUnknownPeer, peer)
	}
	return pm.recno, nil
}

// Checkpoint snapshots the backing database and truncates its WAL.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Checkpoint()
}

// TxnCount returns the number of published transactions (for tests and the
// bench harness).
func (s *Store) TxnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.txns)
}

// ReplayFor implements store.Replayer: the full published log in global
// order together with the peer's recorded decisions in acceptance order,
// from which a lost client reconstructs itself (§5.2).
func (s *Store) ReplayFor(_ context.Context, peer core.PeerID) ([]store.PublishedTxn, map[core.TxnID]core.RestoredDecision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pm, ok := s.peers[peer]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", store.ErrUnknownPeer, peer)
	}
	log := make([]store.PublishedTxn, len(s.ordered))
	for i, en := range s.ordered {
		log[i] = en.pub
	}
	decisions := make(map[core.TxnID]core.RestoredDecision, len(pm.decided))
	for id, d := range pm.decided {
		decisions[id] = core.RestoredDecision{Decision: d, Seq: pm.decidedSeq[id]}
	}
	return log, decisions, nil
}
