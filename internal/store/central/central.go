// Package central implements the centralized update store of §5.2.1 on top
// of the reldb relational engine (standing in for the commercial RDBMS the
// paper used). An epoch sequence timestamps each published batch; because
// publishing is not instantaneous, each peer records when it starts and
// finishes publishing, and a reconciling peer uses the latest epoch not
// preceded by an unfinished epoch as its reconciliation point. Trust
// predicates and update extensions are evaluated inside the store, so only
// relevant transactions travel to the client.
//
// # Concurrency
//
// The store is sharded so concurrent publishers and reconcilers do not
// contend on a single lock (see docs/ARCHITECTURE.md and docs/STORAGE.md):
//
//   - Epoch allocation takes the only global write lock (epochMu) for a
//     short, normally memory-only critical section: epoch numbers are
//     handed out from a pre-allocated block, and the durable sequence
//     commit that claims the next block runs once every epochBlock
//     publishes (WithEpochBlock; block size 1 restores a durable commit
//     per publish).
//   - The stable-epoch frontier is maintained incrementally: every epoch
//     finish advances it through consecutively finished epochs, so
//     reconcilers read it from a single atomic — O(1) instead of a scan
//     over all epochs.
//   - Each open epoch carries its own mutex; since an epoch is owned by
//     exactly one publisher, payload encoding and cache warming — the
//     expensive parts of publishing — run without excluding other peers.
//   - The transaction index is striped across txnShardCount locks keyed by
//     TxnID, so reconcilers chasing antecedents never serialize behind
//     publishers indexing new transactions.
//   - Per-peer state (trust, recno, decided sets) sits behind a per-peer
//     mutex: one peer's reconciliation never blocks another's.
//
// # Epoch-sharded tables
//
// The epochs/txns/decisions tables are split into WithTableShards(n)
// epoch-shards (default DefaultTableShards): epoch e lives entirely in the
// shard-k tables (epochs_k, txns_k, decisions_k) with k = e mod n. A
// publish commit touches only its epoch's shard, so concurrent publishes
// to different epochs write-lock disjoint reldb tables and their WAL group
// commits share flushes instead of serializing on one txns table.
// WithTableShards(1) restores the single-table locking behaviour and is
// the differential baseline. The shard count is recorded in the meta table
// at creation and adopted on reopen; directories written by the pre-shard
// layout (a plain "txns" table) cannot be migrated and fail Open with a
// version error.
//
// # Snapshots and compaction
//
// The store can serialize a global engine-state snapshot at a
// stable-epoch boundary (Snapshot, or periodically via WithSnapshotEvery)
// into the snapshots table: per registered peer, the engine state its
// decisions produce, plus the residue — transactions not yet accepted by
// every peer, whose payloads may still be needed by future extensions or
// late decisions. store.RebuildPeer then restores a peer from the
// snapshot and replays only the post-snapshot tail (ReplayFrom) instead
// of the whole history, and CompactBefore drops the publish/decision rows
// of epochs a retained snapshot has absorbed — refusing to outrun any
// peer's reconciliation frontier or the snapshot's coverage. The recovery
// contract lives in docs/RECOVERY.md; the differential matrix pins
// compaction to change storage only, never decisions.
//
// Lock order: an epoch mutex may be taken before a peer mutex (publish),
// and a peer mutex before a *finished* epoch's mutex (reconciliation
// snapshot); the two can never deadlock because an epoch is unfinished
// while publishing and only finished epochs are snapshotted. snapMu
// (serializing Snapshot/CompactBefore) is outermost and never needed by
// the publish/reconcile paths; Snapshot takes every peer mutex in sorted
// ID order — the same order RecordDecisionsBatch uses — for its brief
// copy phase. epochMu is taken after epoch/peer locks only for the brief
// frontier advance, whose critical section takes no other store lock. The
// reldb engine's per-table locks are always innermost; every multi-table
// commit touches tables in the order epochs_k → txns_k → decisions_k →
// peers → meta → snapshots → idempotency, shard indexes ascending within
// each group (the lock-order rule documented in docs/STORAGE.md); the
// idempotency table is always last, so dedup records can ride any keyed
// operation's commit.
// RecordDecisionsBatch locks its peers in sorted order and writes its
// decisions_k shards in ascending k order; CompactBefore deletes across
// whole shard groups ascending and stamps meta last.
package central

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/metrics"
	"orchestra/internal/reldb"
	"orchestra/internal/store"
	"orchestra/internal/trust"
)

// OrderStride spaces the global order values of consecutive epochs; both
// store implementations assign Order = epoch*OrderStride + position so
// their orderings agree exactly.
const OrderStride = 1 << 20

// txnShardCount stripes the transaction index; a power of two so the hash
// mix below distributes evenly.
const txnShardCount = 32

// DefaultEpochBlock is the default number of epochs claimed per durable
// sequence commit (see WithEpochBlock).
const DefaultEpochBlock = 8

// DefaultTableShards is the default number of epoch-shards the
// epochs/txns/decisions tables are split into (see WithTableShards).
const DefaultTableShards = 8

// layoutVersion identifies the on-disk table layout; it is recorded in the
// meta table when a directory is created. Version 2 was the epoch-sharded
// layout; version 3 adds the snapshots table and the compacted_before meta
// key. Earlier layouts (including pre-shard directories with no meta table
// and a plain "txns" table) cannot be migrated.
const layoutVersion = 3

// Option configures Open.
type Option func(*config)

type config struct {
	epochBlock     int64
	groupCommit    bool
	groupWindow    time.Duration
	adaptiveCommit bool
	adaptiveMin    time.Duration
	adaptiveMax    time.Duration
	tableShards    int
	shardsExplicit bool
	snapEvery      int64
	compactKeep    int64
}

func defaultConfig() config {
	return config{
		epochBlock:  DefaultEpochBlock,
		groupCommit: true,
		tableShards: DefaultTableShards,
		compactKeep: -1,
	}
}

// WithEpochBlock sets how many epoch numbers each durable sequence commit
// claims. Larger blocks amortize the allocator's commit across that many
// publishes; block size 1 restores one durable commit per epoch (the
// allocator's serial escape hatch). Epoch numbers are handed out densely
// either way — block size never changes epoch numbering, decisions, or
// stable-epoch answers, only when the allocator touches the database.
// After a crash, the unissued remainder of the current block becomes a
// permanent gap that recovery marks void (finished and empty).
func WithEpochBlock(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.epochBlock = int64(n)
	}
}

// WithGroupCommit enables the backing database's WAL group-commit path
// (the default) with the given gathering window; zero flushes whatever has
// queued with no added latency. See reldb.Options.GroupCommitWindow.
//
// Flush groups form across commits on disjoint tables: with the
// epoch-sharded layout (WithTableShards) concurrent publishes to epochs in
// different shards touch disjoint tables, so their commits share flushes
// instead of serializing — same-shard publishes still queue on the shard's
// table locks and flush alone. Keep the window at zero unless fsync
// (SyncOnCommit) dominates commit cost: a flush leader sleeps the window
// while holding its table locks, so a nonzero window adds that much
// latency to every conflicting commit.
func WithGroupCommit(window time.Duration) Option {
	return func(c *config) {
		c.groupCommit = true
		c.groupWindow = window
	}
}

// WithSerialCommit disables group commit: every database commit appends
// its own WAL record — the serial escape hatch the differential tests pin
// group commit against.
func WithSerialCommit() Option {
	return func(c *config) { c.groupCommit = false }
}

// WithAdaptiveGroupCommit enables group commit with a gathering window
// sized from observed flush queue depth instead of a fixed setting: deep
// flushes grow the window toward max (amortizing the fsync across more
// commits), solo flushes shrink it toward min (an idle store pays no
// gathering latency). See reldb.Options.AdaptiveGroupCommit. Window
// adaptation changes flush timing only, never durability or replay order.
func WithAdaptiveGroupCommit(min, max time.Duration) Option {
	return func(c *config) {
		c.groupCommit = true
		c.adaptiveCommit = true
		c.adaptiveMin = min
		c.adaptiveMax = max
	}
}

// WithTableShards sets how many epoch-shards the epochs/txns/decisions
// tables are split into. Epoch e lives in shard e mod n, so publishes to
// different epochs commit against disjoint tables and overlap across
// cores; n = 1 restores the single-table locking behaviour (the
// differential baseline). Sharding changes the physical layout only —
// epoch numbering, decisions, stable-epoch answers, and recovery are
// bit-identical at every shard count.
//
// The shard count is fixed when the directory is created (it determines
// which table holds each epoch) and recorded in the meta table; reopening
// an existing directory adopts the recorded count, and passing an
// explicit, different WithTableShards to such a directory is an error.
func WithTableShards(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.tableShards = n
		c.shardsExplicit = true
	}
}

// WithSnapshotEvery enables automatic snapshots: after a publish moves the
// stable epoch n or more epochs past the retained snapshot, the publishing
// call takes a fresh one (Store.Snapshot). n <= 0 (the default) disables
// the automatism; Snapshot stays available on demand either way. Automatic
// maintenance is best-effort: its failures never fail the publish that
// triggered it.
func WithSnapshotEvery(n int) Option {
	return func(c *config) { c.snapEvery = int64(n) }
}

// WithCompactKeep enables automatic compaction after each automatic
// snapshot (so it only takes effect together with WithSnapshotEvery): the
// publish log is compacted to keep epochs below the allowed horizon — the
// minimum of the snapshot epoch and every peer's reconciliation frontier.
// keep = 0 compacts as far as the safety invariants allow; negative (the
// default) never compacts automatically. CompactBefore stays available on
// demand either way.
func WithCompactKeep(keep int) Option {
	return func(c *config) { c.compactKeep = int64(keep) }
}

// Store is the centralized update store.
type Store struct {
	db       *reldb.DB
	schema   *core.Schema
	counters *metrics.StoreCounters

	// ns is the group-namespace prefix every table and sequence name
	// carries ("" for a single-tenant store opened with Open). Tenant
	// stores opened through a Node share one reldb database; because each
	// tenant touches only its own prefixed tables, reldb's per-table locks
	// keep tenants fully parallel while their commits share WAL group
	// flushes. ownsDB records whether Close may close the database (a
	// tenant's database belongs to its Node).
	ns     string
	ownsDB bool

	// Namespaced fixed table and sequence names, precomputed at open.
	metaTab  string
	peersTab string
	snapsTab string
	idemTab  string
	trustTab string
	epochSeq string

	// tableShards is the epoch-shard count; epoch e lives in the shard-k
	// tables below with k = e mod tableShards. The per-shard table names
	// are precomputed at open.
	tableShards  int
	epochsTab    []string
	txnsTab      []string
	decisionsTab []string

	// epochMu guards the epoch registry (epochs, maxE) and the allocator
	// block (blockNext, blockEnd). Exclusive only for the short allocation
	// and frontier-advance critical sections; shared for lookups.
	epochMu sync.RWMutex
	epochs  map[core.Epoch]*epochMeta
	maxE    core.Epoch

	// epochBlock is how many epoch numbers each durable sequence commit
	// claims; [blockNext, blockEnd] is the unissued remainder.
	epochBlock int64
	blockNext  core.Epoch
	blockEnd   core.Epoch

	// stableE is the incrementally maintained stable-epoch frontier: the
	// latest epoch not preceded by an unfinished allocated epoch. Advanced
	// under epochMu on every epoch finish, read lock-free.
	stableE atomic.Int64

	// shards stripe the TxnID → entry index.
	shards [txnShardCount]txnShard

	// peersMu guards the peer registry map only; per-peer state is behind
	// each peerMeta's own mutex.
	peersMu sync.RWMutex
	peers   map[core.PeerID]*peerMeta

	// trustGraph resolves registered textual policies' delegations into
	// each peer's effective, compiled trust. Registration (and recovery)
	// feed it; peerMeta.trust always holds the resolved form. Mutations
	// happen under peersMu, so the affected peers' metas can be updated
	// atomically with the graph.
	trustGraph *trust.Graph

	// snapMu serializes Snapshot and CompactBefore against each other; it
	// is the outermost store lock (never taken while holding any other) and
	// is never needed by the publish/reconcile paths.
	snapMu sync.Mutex
	// snapState caches what the snapshots table and the compacted_before
	// meta key record: the retained snapshot's epoch, its per-peer
	// decision-sequence high-water marks and coverage, and the compaction
	// horizon.
	snapState struct {
		mu        sync.RWMutex
		epoch     core.Epoch
		hw        map[core.PeerID]int64
		covered   map[core.PeerID]bool
		residue   map[core.TxnID]bool
		compacted core.Epoch
	}
	// snapEvery/compactKeep hold the automatic-maintenance policy
	// (WithSnapshotEvery, WithCompactKeep; compactKeep < 0 = off).
	snapEvery   int64
	compactKeep int64

	// idemMu guards the idempotency-key map (see idempotency.go): in-flight
	// and completed keyed operations. Held only for map access, never
	// across an operation.
	idemMu sync.Mutex
	idem   map[store.IdempotencyKey]*idemEntry

	// watchMu guards the subscription registry and the frontier-advance
	// broadcast channel (see watch.go). It is a leaf lock: taken briefly for
	// registry/channel access, never while acquiring any other store lock.
	watchMu     sync.Mutex
	watchSignal chan struct{}
	watchers    map[*watchSub]struct{}
	// watchDone is closed by Close so subscription goroutines whose
	// consumers never cancel still terminate with the store.
	watchDone   chan struct{}
	watchClosed bool
}

type txnShard struct {
	mu sync.RWMutex
	m  map[core.TxnID]*entry
}

type entry struct {
	pub   store.PublishedTxn
	epoch core.Epoch
}

type epochMeta struct {
	peer core.PeerID
	// finished flips exactly once, after every transaction of the epoch is
	// durably recorded and indexed; the stable-epoch scan reads it
	// lock-free.
	finished atomic.Bool
	// mu guards txns and serializes writes into this epoch. An epoch is
	// owned by one publisher, so this is the per-peer publish shard.
	mu   sync.Mutex
	txns []core.TxnID
}

// txnIDs returns the epoch's transaction list. Once finished flips the
// list is immutable and the atomic load orders this read after the final
// append, so readers of finished epochs (every reconciliation window)
// take no lock and make no copy.
func (em *epochMeta) txnIDs() []core.TxnID {
	if em.finished.Load() {
		return em.txns
	}
	em.mu.Lock()
	ids := append([]core.TxnID(nil), em.txns...)
	em.mu.Unlock()
	return ids
}

type peerMeta struct {
	// mu serializes this peer's publishes, reconciliations, and decision
	// recording against each other — and nothing else.
	mu    sync.Mutex
	trust core.Trust
	// prio memoizes transaction priorities by author set under the
	// peer's current effective trust; rebuilt whenever trust changes.
	// Guarded by mu like the candidate paths that read it.
	prio      *core.PriorityCache
	lastEpoch core.Epoch
	recno     int
	decided   map[core.TxnID]core.Decision
	// decidedSeq orders the peer's decisions: the valid replay order for
	// reconstruction (store.Replayer).
	decidedSeq map[core.TxnID]int64
	nextSeq    int64
}

// recordDecisionLocked updates the decision caches.
func (pm *peerMeta) recordDecisionLocked(id core.TxnID, d core.Decision) int64 {
	pm.nextSeq++
	pm.decided[id] = d
	pm.decidedSeq[id] = pm.nextSeq
	return pm.nextSeq
}

// Open creates (or recovers) a store. dir == "" keeps everything in
// memory. By default the backing database batches concurrent commits
// through the WAL group-commit path and the epoch allocator claims
// DefaultEpochBlock epochs per durable sequence commit; see WithEpochBlock,
// WithGroupCommit, WithSerialCommit.
func Open(schema *core.Schema, dir string, opts ...Option) (*Store, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	db, err := reldb.Open(reldb.Options{
		Dir:                  dir,
		GroupCommit:          cfg.groupCommit,
		GroupCommitWindow:    cfg.groupWindow,
		AdaptiveGroupCommit:  cfg.adaptiveCommit,
		GroupCommitMinWindow: cfg.adaptiveMin,
		GroupCommitMaxWindow: cfg.adaptiveMax,
	})
	if err != nil {
		return nil, err
	}
	s, err := openOn(db, schema, "", true, cfg)
	if err != nil {
		db.Close()
		return nil, err
	}
	return s, nil
}

// openOn builds a store over an existing database under the given
// namespace prefix. ownsDB decides whether Close closes the database: the
// single-tenant Open owns its database, a Node's tenants do not.
func openOn(db *reldb.DB, schema *core.Schema, ns string, ownsDB bool, cfg config) (*Store, error) {
	s := &Store{
		db:          db,
		schema:      schema,
		counters:    &metrics.StoreCounters{},
		ns:          ns,
		ownsDB:      ownsDB,
		metaTab:     ns + "meta",
		peersTab:    ns + "peers",
		snapsTab:    ns + "snapshots",
		idemTab:     ns + "idempotency",
		trustTab:    ns + "trust",
		epochSeq:    ns + "epoch",
		epochs:      make(map[core.Epoch]*epochMeta),
		peers:       make(map[core.PeerID]*peerMeta),
		trustGraph:  trust.NewGraph(schema),
		epochBlock:  cfg.epochBlock,
		snapEvery:   cfg.snapEvery,
		compactKeep: cfg.compactKeep,
		idem:        make(map[store.IdempotencyKey]*idemEntry),
		watchSignal: make(chan struct{}),
		watchers:    make(map[*watchSub]struct{}),
		watchDone:   make(chan struct{}),
	}
	for i := range s.shards {
		s.shards[i].m = make(map[core.TxnID]*entry)
	}
	if err := s.initTables(cfg); err != nil {
		return nil, err
	}
	if err := s.loadCaches(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustOpenMemory opens an in-memory store or panics.
func MustOpenMemory(schema *core.Schema) *Store {
	s, err := Open(schema, "")
	if err != nil {
		panic(err)
	}
	return s
}

// Close terminates open watch subscriptions and, for a store that owns its
// database (opened with Open), closes it. A tenant store opened through a
// Node leaves the shared database to the Node.
func (s *Store) Close() error {
	s.watchMu.Lock()
	if !s.watchClosed {
		s.watchClosed = true
		close(s.watchDone)
	}
	s.watchMu.Unlock()
	if !s.ownsDB {
		return nil
	}
	return s.db.Close()
}

// Metrics exposes the store's concurrency counters: publish volume, lock
// contention (including per-shard publish overlap), and decision-batch
// shape.
func (s *Store) Metrics() *metrics.StoreCounters { return s.counters }

// TableShards returns the epoch-shard count of the store's table layout
// (fixed at directory creation; see WithTableShards).
func (s *Store) TableShards() int { return s.tableShards }

// DBMetrics exposes the backing storage engine's commit and contention
// counters (group-commit flush economy, table-lock waits).
func (s *Store) DBMetrics() *metrics.DBCounters { return s.db.Metrics() }

// shard returns the index stripe owning id (FNV-1a over origin and seq).
func (s *Store) shard(id core.TxnID) *txnShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id.Origin); i++ {
		h ^= uint64(id.Origin[i])
		h *= 1099511628211
	}
	h ^= id.Seq
	h *= 1099511628211
	return &s.shards[h%txnShardCount]
}

// lookup returns the indexed entry for id, or nil.
func (s *Store) lookup(id core.TxnID) *entry {
	sh := s.shard(id)
	sh.mu.RLock()
	en := sh.m[id]
	sh.mu.RUnlock()
	return en
}

// index adds an entry to its stripe.
func (s *Store) index(en *entry) {
	sh := s.shard(en.pub.Txn.ID)
	sh.mu.Lock()
	sh.m[en.pub.Txn.ID] = en
	sh.mu.Unlock()
}

// peer resolves a registered peer.
func (s *Store) peer(peer core.PeerID) (*peerMeta, error) {
	s.peersMu.RLock()
	pm := s.peers[peer]
	s.peersMu.RUnlock()
	if pm == nil {
		return nil, fmt.Errorf("%w: %s", store.ErrUnknownPeer, peer)
	}
	return pm, nil
}

// epoch resolves a registered epoch.
func (s *Store) epoch(e core.Epoch) *epochMeta {
	s.epochMu.RLock()
	em := s.epochs[e]
	s.epochMu.RUnlock()
	return em
}

// lockContended acquires mu, bumping the contention counter when the
// fast-path TryLock fails — the signal surfaced by Metrics().
func lockContended(mu *sync.Mutex, onWait func()) {
	if mu.TryLock() {
		return
	}
	onWait()
	mu.Lock()
}

// shardOf returns the epoch-shard index owning epoch e.
func (s *Store) shardOf(e core.Epoch) int {
	return int(uint64(e) % uint64(s.tableShards))
}

// decisionShard routes a decision row to the shard of the decided
// transaction's epoch — the same shard its publish self-accepts used, so
// every row about one transaction lives in one table. A decision for a
// transaction this store never indexed (unreachable through the public
// API, which only decides delivered candidates) falls back to shard 0.
func (s *Store) decisionShard(id core.TxnID) int {
	if en := s.lookup(id); en != nil {
		return s.shardOf(en.epoch)
	}
	return 0
}

// resolveLayout decides the shard count: a fresh directory uses the
// configured count; an existing sharded directory has it recorded in the
// meta table and Open adopts it (an explicit, conflicting WithTableShards
// is an error, since the count determines which table holds each epoch).
// Pre-shard directories fail with a version error — same no-migration
// policy as the binary-codec break.
func (s *Store) resolveLayout(cfg config) error {
	if _, ok := s.db.TableDef(s.ns + "txns"); ok {
		return fmt.Errorf("central: store directory uses the pre-shard single-table layout; no migration path (layout version %d writes epoch-sharded tables)", layoutVersion)
	}
	shards := cfg.tableShards
	if _, ok := s.db.TableDef(s.metaTab); ok {
		var layout, stored int64
		err := s.db.View(func(tx *reldb.Tx) error {
			if r, ok, err := tx.Get(s.metaTab, reldb.Str("layout")); err != nil {
				return err
			} else if ok {
				layout = r[1].I()
			}
			if r, ok, err := tx.Get(s.metaTab, reldb.Str("table_shards")); err != nil {
				return err
			} else if ok {
				stored = r[1].I()
			}
			return nil
		})
		if err != nil {
			return err
		}
		if layout != layoutVersion {
			return fmt.Errorf("central: store directory has layout version %d, this build reads %d; no migration path", layout, layoutVersion)
		}
		if stored < 1 {
			return fmt.Errorf("central: store directory records invalid table shard count %d", stored)
		}
		if cfg.shardsExplicit && int(stored) != cfg.tableShards {
			return fmt.Errorf("central: store directory was created with %d table shards, not %d; reopen with WithTableShards(%d) or omit the option", stored, cfg.tableShards, stored)
		}
		shards = int(stored)
	}
	s.tableShards = shards
	s.epochsTab = make([]string, shards)
	s.txnsTab = make([]string, shards)
	s.decisionsTab = make([]string, shards)
	for k := 0; k < shards; k++ {
		s.epochsTab[k] = fmt.Sprintf("%sepochs_%02d", s.ns, k)
		s.txnsTab[k] = fmt.Sprintf("%stxns_%02d", s.ns, k)
		s.decisionsTab[k] = fmt.Sprintf("%sdecisions_%02d", s.ns, k)
	}
	s.counters.InitShards(shards)
	return nil
}

func (s *Store) initTables(cfg config) error {
	if err := s.resolveLayout(cfg); err != nil {
		return err
	}
	return s.db.Update(func(tx *reldb.Tx) error {
		create := func(def reldb.TableDef) error {
			if tx.HasTable(def.Name) {
				return nil
			}
			return tx.CreateTable(def)
		}
		if !tx.HasTable(s.metaTab) {
			if err := tx.CreateTable(reldb.TableDef{
				Name: s.metaTab,
				Cols: []reldb.ColDef{
					{Name: "key", Type: reldb.ColString},
					{Name: "value", Type: reldb.ColInt},
				},
				Key: []int{0},
			}); err != nil {
				return err
			}
			if err := tx.Insert(s.metaTab, reldb.Row{reldb.Str("layout"), reldb.Int(layoutVersion)}); err != nil {
				return err
			}
			if err := tx.Insert(s.metaTab, reldb.Row{reldb.Str("table_shards"), reldb.Int(int64(s.tableShards))}); err != nil {
				return err
			}
		}
		// Tables are created in the documented lock order (epochs_k, then
		// txns_k, then decisions_k, shard indexes ascending) — irrelevant at
		// open, which is single-threaded, but it keeps every multi-table
		// transaction in this package consistent with the contract.
		for k := 0; k < s.tableShards; k++ {
			if err := create(reldb.TableDef{
				Name: s.epochsTab[k],
				Cols: []reldb.ColDef{
					{Name: "epoch", Type: reldb.ColInt},
					{Name: "peer", Type: reldb.ColString},
					{Name: "finished", Type: reldb.ColBool},
				},
				Key: []int{0},
			}); err != nil {
				return err
			}
		}
		// One row per published batch, not per transaction: the payload is
		// the whole []store.PublishedTxn in one binary-codec stream
		// (store.AppendPublishedTxns).
		for k := 0; k < s.tableShards; k++ {
			if err := create(reldb.TableDef{
				Name: s.txnsTab[k],
				Cols: []reldb.ColDef{
					{Name: "ord", Type: reldb.ColInt},
					{Name: "epoch", Type: reldb.ColInt},
					{Name: "count", Type: reldb.ColInt},
					{Name: "payload", Type: reldb.ColBytes},
				},
				Key: []int{0},
				Indexes: []reldb.IndexDef{
					{Name: "by_epoch", Cols: []int{1}},
				},
			}); err != nil {
				return err
			}
		}
		for k := 0; k < s.tableShards; k++ {
			if err := create(reldb.TableDef{
				Name: s.decisionsTab[k],
				Cols: []reldb.ColDef{
					{Name: "peer", Type: reldb.ColString},
					{Name: "origin", Type: reldb.ColString},
					{Name: "seq", Type: reldb.ColInt},
					{Name: "decision", Type: reldb.ColInt},
					{Name: "dseq", Type: reldb.ColInt},
				},
				Key: []int{0, 1, 2},
			}); err != nil {
				return err
			}
		}
		if err := create(reldb.TableDef{
			Name: s.peersTab,
			Cols: []reldb.ColDef{
				{Name: "peer", Type: reldb.ColString},
				{Name: "last_epoch", Type: reldb.ColInt},
				{Name: "recno", Type: reldb.ColInt},
			},
			Key: []int{0},
		}); err != nil {
			return err
		}
		// One row: the retained global engine-state snapshot (binary codec,
		// store.AppendSnapshot). Each Snapshot() commit atomically replaces
		// it; a torn commit rolls back whole, so the previous snapshot (and
		// the publish log) are never voided by a crash mid-snapshot.
		if err := create(reldb.TableDef{
			Name: s.snapsTab,
			Cols: []reldb.ColDef{
				{Name: "epoch", Type: reldb.ColInt},
				{Name: "payload", Type: reldb.ColBytes},
			},
			Key: []int{0},
		}); err != nil {
			return err
		}
		// One row per idempotency-keyed operation that committed: the key,
		// the operation, and its memoized result (see idempotency.go). Rows
		// are written inside the keyed operation's own commit, so a crash
		// can never separate an operation from its dedup record. Created
		// conditionally: directories from before this table gain it on
		// reopen with no layout break.
		if err := create(reldb.TableDef{
			Name: s.idemTab,
			Cols: []reldb.ColDef{
				{Name: "key", Type: reldb.ColString},
				{Name: "op", Type: reldb.ColString},
				{Name: "r1", Type: reldb.ColInt},
				{Name: "r2", Type: reldb.ColInt},
				{Name: "r3", Type: reldb.ColInt},
			},
			Key: []int{0},
		}); err != nil {
			return err
		}
		// One row per peer whose trust policy is textual (*trust.Policy):
		// the policy source, so recovery restores it and the store serves
		// reconciliations after a restart without waiting for peers to
		// re-register. In-process predicate policies cannot be persisted;
		// those peers must re-register after recovery (beginReconciliation
		// refuses them with a clear error until they do).
		return create(reldb.TableDef{
			Name: s.trustTab,
			Cols: []reldb.ColDef{
				{Name: "peer", Type: reldb.ColString},
				{Name: "policy", Type: reldb.ColString},
			},
			Key: []int{0},
		})
	})
}

// loadCaches rebuilds the in-memory indexes from the tables after recovery.
// Open is single-threaded, so no store locks are taken here.
func (s *Store) loadCaches() error {
	err := s.db.View(func(tx *reldb.Tx) error {
		for k := 0; k < s.tableShards; k++ {
			if err := tx.Scan(s.epochsTab[k], func(r reldb.Row) bool {
				e := core.Epoch(r[0].I())
				em := &epochMeta{peer: core.PeerID(r[1].S())}
				em.finished.Store(r[2].B())
				s.epochs[e] = em
				if e > s.maxE {
					s.maxE = e
				}
				return true
			}); err != nil {
				return err
			}
		}
		// The durable sequence is the allocator's block high-water mark.
		// Epochs up to it that never reached a durable publish commit —
		// the unissued block remainder, or allocations whose publishes
		// died with the previous process — can never carry transactions
		// now; register them as void (finished, empty) so the stable
		// frontier passes over the gaps. Allocation resumes with a fresh
		// block above the high-water mark.
		seqHW := core.Epoch(tx.CurrentSeq(s.epochSeq))
		for e := core.Epoch(1); e <= seqHW; e++ {
			if _, ok := s.epochs[e]; !ok {
				em := &epochMeta{}
				em.finished.Store(true)
				s.epochs[e] = em
			}
		}
		if seqHW > s.maxE {
			s.maxE = seqHW
		}
		s.blockNext, s.blockEnd = seqHW+1, seqHW
		var scanErr error
		var recovered []*entry
		for k := 0; k < s.tableShards; k++ {
			if err := tx.Scan(s.txnsTab[k], func(r reldb.Row) bool {
				batch, err := store.DecodePublishedTxns(r[3].Raw())
				if err != nil {
					scanErr = err
					return false
				}
				for _, pub := range batch {
					// Decoding drops the unexported caches; re-warm before
					// the recovered transactions are shared across
					// reconciling peers.
					pub.Txn.PrecomputeEncodings(s.schema)
					recovered = append(recovered, &entry{pub: pub, epoch: core.Epoch(r[1].I())})
				}
				return true
			}); err != nil {
				return err
			}
			if scanErr != nil {
				return scanErr
			}
		}
		sort.Slice(recovered, func(i, j int) bool {
			return recovered[i].pub.Txn.Order < recovered[j].pub.Txn.Order
		})
		for _, en := range recovered {
			s.index(en)
			if em := s.epochs[en.epoch]; em != nil {
				em.txns = append(em.txns, en.pub.Txn.ID)
			}
		}
		if err := tx.Scan(s.peersTab, func(r reldb.Row) bool {
			s.peers[core.PeerID(r[0].S())] = &peerMeta{
				lastEpoch:  core.Epoch(r[1].I()),
				recno:      int(r[2].I()),
				decided:    make(map[core.TxnID]core.Decision),
				decidedSeq: make(map[core.TxnID]int64),
			}
			return true
		}); err != nil {
			return err
		}
		// Restore persisted textual trust policies. Peers registered with
		// in-process predicate policies have no row here and stay
		// trust-less until they re-register. Every row is parsed before
		// any policy is resolved: a policy may delegate to a peer whose
		// row scans later, and per-row resolution would bind incomplete
		// closures.
		recoveredTrust := make(map[core.PeerID]*trust.Policy)
		if err := tx.Scan(s.trustTab, func(r reldb.Row) bool {
			if s.peers[core.PeerID(r[0].S())] == nil {
				return true
			}
			p, err := trust.Parse(r[1].S())
			if err != nil {
				scanErr = fmt.Errorf("central: peer %s persisted trust policy: %w", r[0].S(), err)
				return false
			}
			recoveredTrust[core.PeerID(r[0].S())] = p.WithSchema(s.schema)
			return true
		}); err != nil {
			return err
		}
		if scanErr != nil {
			return scanErr
		}
		for peer, p := range recoveredTrust {
			// Registration order is irrelevant: Set re-resolves every
			// already-loaded policy whose closure reaches the new member.
			s.trustGraph.Set(peer, p)
		}
		for peer := range recoveredTrust {
			pm := s.peers[peer]
			pm.trust = s.trustGraph.Effective(peer)
			pm.prio = core.NewPriorityCache(pm.trust)
		}
		for k := 0; k < s.tableShards; k++ {
			if err := tx.Scan(s.decisionsTab[k], func(r reldb.Row) bool {
				pm := s.peers[core.PeerID(r[0].S())]
				if pm == nil {
					return true
				}
				id := core.TxnID{Origin: core.PeerID(r[1].S()), Seq: uint64(r[2].I())}
				pm.decided[id] = core.Decision(r[3].I())
				pm.decidedSeq[id] = r[4].I()
				if r[4].I() > pm.nextSeq {
					pm.nextSeq = r[4].I()
				}
				return true
			}); err != nil {
				return err
			}
		}
		if r, ok, err := tx.Get(s.metaTab, reldb.Str("compacted_before")); err != nil {
			return err
		} else if ok {
			s.snapState.compacted = core.Epoch(r[1].I())
		}
		return s.loadIdem(tx)
	})
	if err != nil {
		return err
	}
	if err := s.loadSnapshotState(); err != nil {
		return err
	}
	s.advanceFrontier()
	return nil
}

// loadSnapshotState rebuilds the snapshot-derived caches after recovery:
// the retained snapshot's epoch, per-peer decision high-water marks and
// coverage, the residue entries (whose payloads exist only in the snapshot
// once their epochs are compacted), and each peer's decision-sequence
// floor. Open is single-threaded, so no store locks are taken here.
func (s *Store) loadSnapshotState() error {
	snap, err := s.LatestSnapshot(context.Background())
	if err != nil {
		return err
	}
	if snap == nil {
		if s.snapState.compacted > 0 {
			return fmt.Errorf("central: directory compacted through epoch %d but retains no snapshot", s.snapState.compacted)
		}
		return nil
	}
	s.snapState.epoch = snap.Epoch
	s.snapState.hw = make(map[core.PeerID]int64, len(snap.Peers))
	s.snapState.covered = make(map[core.PeerID]bool, len(snap.Peers))
	s.snapState.residue = make(map[core.TxnID]bool, len(snap.Residue))
	for i := range snap.Residue {
		s.snapState.residue[snap.Residue[i].Txn.ID] = true
	}
	for i := range snap.Peers {
		ps := &snap.Peers[i]
		s.snapState.hw[ps.Engine.Peer] = ps.DecisionSeq
		s.snapState.covered[ps.Engine.Peer] = true
		// Decision sequences must keep ascending past what the snapshot
		// folded in, even when compaction dropped every durable decision
		// row of a peer.
		if pm := s.peers[ps.Engine.Peer]; pm != nil && ps.DecisionSeq > pm.nextSeq {
			pm.nextSeq = ps.DecisionSeq
		}
	}
	for i := range snap.Residue {
		pub := snap.Residue[i]
		if s.lookup(pub.Txn.ID) == nil {
			s.index(&entry{pub: pub, epoch: pub.Txn.Epoch})
		}
	}
	return nil
}

// RegisterPeer implements store.Store. Re-registering an existing peer
// (e.g. after recovery, or to change trust mid-stream) replaces its trust
// policy and keeps its history. Textual policies (*trust.Policy) are
// persisted alongside the peer row so a recovered store serves
// reconciliations without re-registration; in-process predicate policies
// cannot travel into the directory, so any previously persisted text is
// dropped rather than left to resurrect an outdated policy on the next
// recovery.
//
// The textual form stays the durable format; what registration installs
// is the policy's *effective* decision program, resolved through the
// store's trust graph. Delegations must name peers this store already
// knows. Re-registration recompiles only the affected participants —
// those whose delegation closure reaches this peer.
func (s *Store) RegisterPeer(_ context.Context, peer core.PeerID, t core.Trust) error {
	s.peersMu.Lock()
	defer s.peersMu.Unlock()
	if pol, ok := t.(*trust.Policy); ok {
		if pol.Schema() == nil {
			pol.WithSchema(s.schema)
		}
		// A delegation to a peer this store has never seen would silently
		// contribute nothing; refuse it instead.
		for _, d := range pol.Delegations() {
			if d.Peer == peer {
				continue
			}
			if _, known := s.peers[d.Peer]; !known {
				return fmt.Errorf("central: peer %s delegates to unregistered peer %s", peer, d.Peer)
			}
		}
	}
	_, known := s.peers[peer]
	err := s.db.Update(func(tx *reldb.Tx) error {
		if !known {
			if err := tx.Insert(s.peersTab, reldb.Row{reldb.Str(string(peer)), reldb.Int(0), reldb.Int(0)}); err != nil {
				return err
			}
		}
		if p, ok := t.(*trust.Policy); ok {
			return tx.Upsert(s.trustTab, reldb.Row{reldb.Str(string(peer)), reldb.Str(p.String())})
		}
		_, err := tx.Delete(s.trustTab, reldb.Str(string(peer)))
		return err
	})
	if err != nil {
		return err
	}
	if !known {
		s.peers[peer] = &peerMeta{
			decided:    make(map[core.TxnID]core.Decision),
			decidedSeq: make(map[core.TxnID]int64),
		}
	}
	affected := s.trustGraph.Set(peer, t)
	for _, ap := range affected {
		pm := s.peers[ap]
		if pm == nil {
			continue
		}
		eff := s.trustGraph.Effective(ap)
		pm.mu.Lock()
		pm.trust = eff
		pm.prio = core.NewPriorityCache(eff)
		pm.mu.Unlock()
	}
	s.counters.ObserveTrustRecompiles(len(affected))
	return nil
}

// EffectiveTrust implements store.TrustResolver: it returns the peer's
// resolved, compiled trust — its own rules merged with every delegation
// closure member's capped rules.
func (s *Store) EffectiveTrust(_ context.Context, peer core.PeerID) (core.Trust, error) {
	s.peersMu.RLock()
	defer s.peersMu.RUnlock()
	if _, ok := s.peers[peer]; !ok {
		return nil, fmt.Errorf("central: unknown peer %s", peer)
	}
	return s.trustGraph.Effective(peer), nil
}

// PublishBegin allocates an epoch and records that the peer has started
// publishing into it. Exposed separately so tests and the failure-injection
// benchmarks can hold an epoch open.
func (s *Store) PublishBegin(peer core.PeerID) (core.Epoch, error) {
	if _, err := s.peer(peer); err != nil {
		return 0, err
	}
	return s.allocEpoch(peer)
}

// allocEpoch is the publish path's single global critical section, and it
// is normally memory-only: epoch numbers come from a pre-claimed block,
// and the durable sequence commit runs once per epochBlock allocations.
// The epoch becomes durable with its first publish commit (publishWrite
// writes the epochs row in the same transaction as the batch); an epoch
// that dies between allocation and its first commit leaves no durable
// trace and is voided by recovery. Everything expensive — payload
// encoding, cache warming, indexing — happens outside this lock, under
// per-epoch and per-peer locks.
func (s *Store) allocEpoch(peer core.PeerID) (core.Epoch, error) {
	if !s.epochMu.TryLock() {
		s.counters.ObserveEpochContention()
		s.epochMu.Lock()
	}
	defer s.epochMu.Unlock()
	if s.blockNext > s.blockEnd {
		var end int64
		err := s.db.Update(func(tx *reldb.Tx) error {
			var err error
			end, err = tx.AdvanceSeq(s.epochSeq, s.epochBlock)
			return err
		})
		if err != nil {
			return 0, err
		}
		s.blockNext, s.blockEnd = core.Epoch(end)-core.Epoch(s.epochBlock)+1, core.Epoch(end)
	}
	epoch := s.blockNext
	s.blockNext++
	s.epochs[epoch] = &epochMeta{peer: peer}
	if epoch > s.maxE {
		s.maxE = epoch
	}
	return epoch, nil
}

// PublishWrite appends the batch's transactions under the open epoch,
// assigning global orders, and records them as accepted by the publisher.
func (s *Store) PublishWrite(peer core.PeerID, epoch core.Epoch, txns []store.PublishedTxn) error {
	return s.publishWrite(peer, epoch, txns, false, "")
}

// publishWrite is the shared write path; finish additionally marks the
// epoch complete in the same database commit (the fast path used by
// Publish, saving one commit per publish). A non-empty key records the
// publish's dedup row in the same commit.
func (s *Store) publishWrite(peer core.PeerID, epoch core.Epoch, txns []store.PublishedTxn, finish bool, key store.IdempotencyKey) error {
	em := s.epoch(epoch)
	if em == nil || em.peer != peer {
		return fmt.Errorf("central: epoch %d not open for %s", epoch, peer)
	}
	pm, err := s.peer(peer)
	if err != nil {
		return err
	}

	em.mu.Lock()
	defer em.mu.Unlock()
	if em.finished.Load() {
		return fmt.Errorf("central: epoch %d already finished", epoch)
	}
	if len(txns) == 0 {
		return nil // nothing to write; Publish never reaches here empty
	}
	// Assign orders and encode the batch before taking the peer lock or
	// the database lock: encoding is the expensive part of publishing, and
	// it runs under the per-epoch lock only, which nobody else contends
	// for. The whole batch becomes one compact binary payload
	// (store.AppendPublishedTxns — reflection-free; gob's per-encoder type
	// descriptors used to dominate the publish profile).
	base := uint64(len(em.txns))
	for i := range txns {
		pt := &txns[i]
		pt.Txn.Epoch = epoch
		pt.Txn.Order = uint64(epoch)*OrderStride + base + uint64(i)
		// Warm the encoding caches before the entries become visible:
		// BeginReconciliation hands these *Transaction pointers to every
		// peer, and concurrently reconciling engines must never lazily
		// populate a shared cache.
		pt.Txn.PrecomputeEncodings(s.schema)
	}
	payload := store.AppendPublishedTxns(nil, txns)

	lockContended(&pm.mu, s.counters.ObservePeerContention)
	defer pm.mu.Unlock()
	// One commit carries the whole publish: the epoch registration (first
	// durable trace of the epoch — allocation itself is memory-only), the
	// batch payload, and the publisher's self-accepts. The fast path also
	// finishes the epoch here. Everything lands in the epoch's shard k, in
	// the documented epochs_k → txns_k → decisions_k order — publishes to
	// epochs in other shards touch disjoint tables and commit in parallel.
	k := s.shardOf(epoch)
	s.counters.EnterShard(k)
	err = s.db.Update(func(tx *reldb.Tx) error {
		if err := tx.Upsert(s.epochsTab[k], reldb.Row{
			reldb.Int(int64(epoch)), reldb.Str(string(peer)), reldb.Bool(finish),
		}); err != nil {
			return err
		}
		if err := tx.Insert(s.txnsTab[k], reldb.Row{
			reldb.Int(int64(txns[0].Txn.Order)),
			reldb.Int(int64(epoch)),
			reldb.Int(int64(len(txns))),
			reldb.Bytes(payload),
		}); err != nil {
			return err
		}
		for i := range txns {
			pt := &txns[i]
			if err := tx.Insert(s.decisionsTab[k], reldb.Row{
				reldb.Str(string(peer)),
				reldb.Str(string(pt.Txn.ID.Origin)),
				reldb.Int(int64(pt.Txn.ID.Seq)),
				reldb.Int(int64(core.DecisionAccept)),
				reldb.Int(pm.nextSeq + int64(i) + 1),
			}); err != nil {
				return err
			}
		}
		if key != "" {
			return tx.Insert(s.idemTab, idemRow(key, opPublish, int64(epoch), 0, 0))
		}
		return nil
	})
	s.counters.LeaveShard(k)
	if err != nil {
		return err
	}
	for i := range txns {
		pt := txns[i]
		s.index(&entry{pub: pt, epoch: epoch})
		em.txns = append(em.txns, pt.Txn.ID)
		pm.recordDecisionLocked(pt.Txn.ID, core.DecisionAccept)
	}
	if finish {
		em.finished.Store(true)
		s.advanceFrontier()
	}
	return nil
}

// PublishFinish marks the epoch complete, making it visible to stable-epoch
// computation.
func (s *Store) PublishFinish(peer core.PeerID, epoch core.Epoch) error {
	em := s.epoch(epoch)
	if em == nil || em.peer != peer {
		return fmt.Errorf("central: epoch %d not open for %s", epoch, peer)
	}
	em.mu.Lock()
	defer em.mu.Unlock()
	err := s.db.Update(func(tx *reldb.Tx) error {
		return tx.Upsert(s.epochsTab[s.shardOf(epoch)], reldb.Row{reldb.Int(int64(epoch)), reldb.Str(string(peer)), reldb.Bool(true)})
	})
	if err != nil {
		return err
	}
	em.finished.Store(true)
	s.advanceFrontier()
	return nil
}

// Publish implements store.Store: allocate an epoch, then write and finish
// in a single database commit. When automatic maintenance is configured
// (WithSnapshotEvery/WithCompactKeep), the publish that crosses the
// snapshot cadence runs it before returning. A context carrying an
// idempotency key (store.WithIdempotencyKey) makes the publish safe to
// redeliver: duplicates of a committed publish return the original epoch
// without publishing again.
func (s *Store) Publish(ctx context.Context, peer core.PeerID, txns []store.PublishedTxn) (core.Epoch, error) {
	s.counters.ObservePublish()
	if _, err := s.peer(peer); err != nil {
		return 0, err
	}
	key, keyed := store.IdempotencyKeyFrom(ctx)
	if !keyed {
		return s.publish(ctx, peer, txns, "")
	}
	en, dup, err := s.beginIdem(key, opPublish)
	if err != nil {
		return 0, err
	}
	if dup {
		return en.e, nil
	}
	epoch, err := s.publish(ctx, peer, txns, key)
	en.e = epoch
	s.finishIdem(key, en, err)
	return epoch, err
}

// publish is the Publish body; a non-empty key rides the publish commit as
// a dedup record.
func (s *Store) publish(ctx context.Context, peer core.PeerID, txns []store.PublishedTxn, key store.IdempotencyKey) (core.Epoch, error) {
	if len(txns) == 0 {
		// Naturally idempotent: nothing commits, so a keyed empty publish
		// memoizes in memory only.
		s.epochMu.RLock()
		defer s.epochMu.RUnlock()
		return s.maxE, nil
	}
	epoch, err := s.allocEpoch(peer)
	if err != nil {
		return 0, err
	}
	if err := s.publishWrite(peer, epoch, txns, true, key); err != nil {
		return 0, err
	}
	s.maybeMaintain(ctx)
	return epoch, nil
}

// stableEpoch returns the most recent epoch not preceded by an unfinished
// allocated epoch — a single atomic load: the frontier is maintained
// incrementally by advanceFrontier at every epoch finish instead of being
// recomputed by an O(epochs) scan per reconciliation.
func (s *Store) stableEpoch() core.Epoch {
	return core.Epoch(s.stableE.Load())
}

// advanceFrontier pushes the stable-epoch frontier through consecutively
// finished (or void) epochs. Called after every epoch finish; the critical
// section touches only the epoch registry, so taking epochMu here while
// holding epoch/peer locks cannot deadlock. Advancement is monotone and
// re-scans from the current frontier, so racing finishers converge on the
// same answer regardless of order.
func (s *Store) advanceFrontier() {
	s.epochMu.Lock()
	old := core.Epoch(s.stableE.Load())
	st := old
	for {
		em, ok := s.epochs[st+1]
		if !ok || !em.finished.Load() {
			break
		}
		st++
	}
	s.stableE.Store(int64(st))
	s.epochMu.Unlock()
	if st > old {
		s.notifyWatchers()
	}
}

// BeginReconciliation implements store.Store. Only the reconciling peer's
// own lock is held throughout, so any number of peers reconcile
// concurrently; the epoch window is read under per-epoch locks and the
// transaction index under its stripes. A context carrying an idempotency
// key makes the call safe to redeliver: a duplicate of a committed begin
// returns the original recno and window (with its candidates recomputed)
// instead of advancing the frontier again — without the key, a retried
// begin would permanently lose the first window's candidates.
func (s *Store) BeginReconciliation(ctx context.Context, peer core.PeerID) (*store.Reconciliation, error) {
	key, keyed := store.IdempotencyKeyFrom(ctx)
	if !keyed {
		return s.beginReconciliation(peer, "")
	}
	en, dup, err := s.beginIdem(key, opBegin)
	if err != nil {
		return nil, err
	}
	if dup {
		return s.replayReconciliation(peer, en)
	}
	rec, err := s.beginReconciliation(peer, key)
	if err == nil {
		en.recno, en.from, en.to = rec.Recno, rec.FromEpoch, rec.ToEpoch
	}
	s.finishIdem(key, en, err)
	return rec, err
}

func (s *Store) beginReconciliation(peer core.PeerID, key store.IdempotencyKey) (*store.Reconciliation, error) {
	pm, err := s.peer(peer)
	if err != nil {
		return nil, err
	}
	lockContended(&pm.mu, s.counters.ObservePeerContention)
	defer pm.mu.Unlock()
	// A recovered store may know the peer but not its trust policy (only
	// textual policies persist). Refuse cleanly rather than computing
	// candidate priorities against nothing: the error is permanent until
	// the peer re-registers, and no reconciliation window is consumed.
	if pm.trust == nil {
		return nil, fmt.Errorf("central: peer %s has no trust policy (re-register after recovery)", peer)
	}

	stable := s.stableEpoch()
	from := pm.lastEpoch
	if stable < from {
		stable = from
	}
	recno := pm.recno + 1
	// Record the reconciliation point immediately and commit, as §5.2.1
	// prescribes, so the epochs table is released for publishers. The dedup
	// record rides the same commit.
	err = s.db.Update(func(tx *reldb.Tx) error {
		if err := tx.Upsert(s.peersTab, reldb.Row{
			reldb.Str(string(peer)), reldb.Int(int64(stable)), reldb.Int(int64(recno)),
		}); err != nil {
			return err
		}
		if key != "" {
			return tx.Insert(s.idemTab, idemRow(key, opBegin, int64(recno), int64(from), int64(stable)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	pm.lastEpoch = stable
	pm.recno = recno

	return &store.Reconciliation{
		Recno:      recno,
		FromEpoch:  from,
		ToEpoch:    stable,
		Candidates: s.candidatesLocked(pm, peer, from, stable),
	}, nil
}

// candidatesLocked walks the window (from, to] and collects the peer's
// candidates. The caller holds the peer's lock. Walking in epoch order —
// within an epoch the publish order is the global order — produces
// candidates order-sorted exactly as the single-lock implementation did.
func (s *Store) candidatesLocked(pm *peerMeta, peer core.PeerID, from, to core.Epoch) []*core.Candidate {
	var out []*core.Candidate
	for e := from + 1; e <= to; e++ {
		em := s.epoch(e)
		if em == nil {
			continue
		}
		for _, id := range em.txnIDs() {
			if id.Origin == peer {
				continue
			}
			if _, decided := pm.decided[id]; decided {
				continue
			}
			en := s.lookup(id)
			if en == nil {
				continue
			}
			x := en.pub.Txn
			prio := pm.prio.TxnPriority(x)
			if prio <= 0 {
				continue
			}
			out = append(out, &core.Candidate{
				Txn:      x,
				Priority: prio,
				Ext:      s.extension(id, pm),
			})
		}
	}
	return out
}

// replayCandidatesLocked recomputes a memoized reconciliation window's
// candidates for the dedup replay path. It applies the same filters as
// candidatesLocked but collects the window's transactions from the index
// instead of the epoch metas: a live begin always sees its window's epochs
// (compaction cannot pass the peer's own pre-begin frontier), but a
// duplicate can be delivered after those epochs were compacted to void —
// the index, which retains every snapshot-residue entry, is what still
// holds the window's undecided transactions then. Within uncompacted
// windows the two walks agree exactly: the index holds precisely the
// epochs' entries, and sorting by global order reproduces the epoch-order
// walk. The caller holds the peer's lock.
func (s *Store) replayCandidatesLocked(pm *peerMeta, peer core.PeerID, from, to core.Epoch) []*core.Candidate {
	var window []*entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, en := range sh.m {
			if en.epoch > from && en.epoch <= to {
				window = append(window, en)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(window, func(i, j int) bool { return window[i].pub.Txn.Order < window[j].pub.Txn.Order })
	var out []*core.Candidate
	for _, en := range window {
		id := en.pub.Txn.ID
		if id.Origin == peer {
			continue
		}
		if _, decided := pm.decided[id]; decided {
			continue
		}
		x := en.pub.Txn
		prio := pm.prio.TxnPriority(x)
		if prio <= 0 {
			continue
		}
		out = append(out, &core.Candidate{
			Txn:      x,
			Priority: prio,
			Ext:      s.extension(id, pm),
		})
	}
	return out
}

// extension computes the transaction extension of root for the peer: the
// antecedent closure excluding transactions the peer has accepted, sorted
// by global order. The caller holds the peer's lock.
func (s *Store) extension(root core.TxnID, pm *peerMeta) []*core.Transaction {
	visited := map[core.TxnID]bool{root: true}
	var out []*core.Transaction
	stack := []core.TxnID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		en := s.lookup(id)
		if en == nil {
			continue // antecedent from before this store's history
		}
		if id != root && pm.decided[id] == core.DecisionAccept {
			continue
		}
		out = append(out, en.pub.Txn)
		for _, a := range en.pub.Antecedents {
			if !visited[a] {
				visited[a] = true
				stack = append(stack, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	return out
}

// RecordDecisions implements store.Store as a single-entry batch.
func (s *Store) RecordDecisions(ctx context.Context, peer core.PeerID, recno int, accepted, rejected []core.TxnID) error {
	return s.RecordDecisionsBatch(ctx, []store.DecisionBatch{{
		Peer: peer, Recno: recno, Accepted: accepted, Rejected: rejected,
	}})
}

// RecordDecisionsBatch implements store.Store: every batch's decisions are
// committed in one database transaction — one round trip for a whole
// fan-out wave. Peers are locked in sorted order so concurrent batches
// cannot deadlock. A context carrying an idempotency key makes the call
// safe to redeliver: duplicates of a committed batch succeed without
// writing a second set of decision rows.
func (s *Store) RecordDecisionsBatch(ctx context.Context, batches []store.DecisionBatch) error {
	key, keyed := store.IdempotencyKeyFrom(ctx)
	if !keyed {
		return s.recordDecisionsBatch(batches, "", 0)
	}
	en, dup, err := s.beginIdem(key, opDecide)
	if err != nil {
		return err
	}
	if dup {
		return nil
	}
	// The record's retention watermark: the current stable epoch is at or
	// above every batch peer's reconciliation frontier, and the compaction
	// horizon never passes a frontier — so the record survives at least
	// until each of those peers advances its frontier again, which a peer
	// still retrying this very call cannot do (see idempotency.go).
	wm := s.stableEpoch()
	err = s.recordDecisionsBatch(batches, key, wm)
	en.e = wm
	s.finishIdem(key, en, err)
	return err
}

func (s *Store) recordDecisionsBatch(batches []store.DecisionBatch, key store.IdempotencyKey, wm core.Epoch) error {
	if len(batches) == 0 {
		return nil
	}
	pms := make([]*peerMeta, len(batches))
	for i, b := range batches {
		pm, err := s.peer(b.Peer)
		if err != nil {
			return err
		}
		pms[i] = pm
	}
	order := make([]int, len(batches))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return batches[order[a]].Peer < batches[order[b]].Peer })
	locked := make(map[*peerMeta]bool, len(batches))
	for _, i := range order {
		if locked[pms[i]] {
			continue // same peer twice in one batch: one lock covers both
		}
		lockContended(&pms[i].mu, s.counters.ObservePeerContention)
		locked[pms[i]] = true
	}
	defer func() {
		for pm := range locked {
			pm.mu.Unlock()
		}
	}()

	total := 0
	for i, b := range batches {
		if b.Recno > pms[i].recno {
			return fmt.Errorf("central: decisions for future reconciliation %d (current %d)", b.Recno, pms[i].recno)
		}
		total += len(b.Accepted) + len(b.Rejected)
	}
	if total > 0 {
		// dseq continues each peer's sequence across the whole commit; the
		// cache update below replays the same order, keeping the durable
		// and in-memory sequences identical. Rows are assigned their seq in
		// batch order first, then written grouped by epoch-shard with the
		// shard indexes ascending — the documented decisions_k lock order,
		// so a wave's commit cannot deadlock against a concurrent publish
		// or another wave.
		type decRow struct {
			peer core.PeerID
			id   core.TxnID
			d    core.Decision
			dseq int64
		}
		perShard := make([][]decRow, s.tableShards)
		next := make(map[*peerMeta]int64, len(batches))
		for i, b := range batches {
			pm := pms[i]
			if _, ok := next[pm]; !ok {
				next[pm] = pm.nextSeq
			}
			add := func(id core.TxnID, d core.Decision) {
				next[pm]++
				k := s.decisionShard(id)
				perShard[k] = append(perShard[k], decRow{peer: b.Peer, id: id, d: d, dseq: next[pm]})
			}
			for _, id := range b.Accepted {
				add(id, core.DecisionAccept)
			}
			for _, id := range b.Rejected {
				add(id, core.DecisionReject)
			}
		}
		err := s.db.Update(func(tx *reldb.Tx) error {
			for k := 0; k < s.tableShards; k++ {
				for _, r := range perShard[k] {
					if err := tx.Upsert(s.decisionsTab[k], reldb.Row{
						reldb.Str(string(r.peer)),
						reldb.Str(string(r.id.Origin)),
						reldb.Int(int64(r.id.Seq)),
						reldb.Int(int64(r.d)),
						reldb.Int(r.dseq),
					}); err != nil {
						return err
					}
				}
			}
			if key != "" {
				return tx.Insert(s.idemTab, idemRow(key, opDecide, int64(wm), 0, 0))
			}
			return nil
		})
		if err != nil {
			return err
		}
		for i, b := range batches {
			for _, id := range b.Accepted {
				pms[i].recordDecisionLocked(id, core.DecisionAccept)
			}
			for _, id := range b.Rejected {
				pms[i].recordDecisionLocked(id, core.DecisionReject)
			}
		}
	}
	s.counters.ObserveDecisionRoundTrip(len(batches), total)
	return nil
}

// CurrentRecno implements store.Store.
func (s *Store) CurrentRecno(_ context.Context, peer core.PeerID) (int, error) {
	pm, err := s.peer(peer)
	if err != nil {
		return 0, err
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.recno, nil
}

// Checkpoint snapshots the backing database and truncates its WAL.
func (s *Store) Checkpoint() error {
	return s.db.Checkpoint()
}

// TxnCount returns the number of published transactions (for tests and the
// bench harness).
func (s *Store) TxnCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// ReplayFor implements store.Replayer: the full published log in global
// order together with the peer's recorded decisions in acceptance order,
// from which a lost client reconstructs itself (see docs/RECOVERY.md).
// After compaction, full replay no longer exists for peers the retained
// snapshot covers — their early history lives only in the snapshot — so
// the call fails for them; store.RebuildPeer takes the snapshot + tail
// path instead. Peers registered after the snapshot (whose whole history
// is in the retained epochs) still replay fully.
func (s *Store) ReplayFor(_ context.Context, peer core.PeerID) ([]store.PublishedTxn, map[core.TxnID]core.RestoredDecision, error) {
	pm, err := s.peer(peer)
	if err != nil {
		return nil, nil, err
	}
	s.snapState.mu.RLock()
	compacted := s.snapState.compacted
	snapCovered := s.snapState.covered[peer]
	s.snapState.mu.RUnlock()
	if compacted > 0 && snapCovered {
		return nil, nil, fmt.Errorf("central: epochs through %d are compacted; rebuild %s from the retained snapshot (store.RebuildPeer)", compacted, peer)
	}
	s.epochMu.RLock()
	maxE := s.maxE
	s.epochMu.RUnlock()
	var log []store.PublishedTxn
	// Epoch order × publish order within an epoch = global order.
	for e := core.Epoch(1); e <= maxE; e++ {
		em := s.epoch(e)
		if em == nil {
			continue
		}
		for _, id := range em.txnIDs() {
			if en := s.lookup(id); en != nil {
				log = append(log, en.pub)
			}
		}
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	decisions := make(map[core.TxnID]core.RestoredDecision, len(pm.decided))
	for id, d := range pm.decided {
		decisions[id] = core.RestoredDecision{Decision: d, Seq: pm.decidedSeq[id]}
	}
	return log, decisions, nil
}
