package central

import (
	"context"
	"fmt"
	"testing"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/store"
	"orchestra/internal/store/storetest"
)

// pubBatch publishes one batch of n transactions from peer p into s,
// with sequence numbers seq, seq+1, ...
func pubBatch(t *testing.T, s *Store, p core.PeerID, seq uint64, n int) []core.TxnID {
	t.Helper()
	batch := make([]store.PublishedTxn, n)
	ids := make([]core.TxnID, n)
	for k := range batch {
		id := core.TxnID{Origin: p, Seq: seq + uint64(k)}
		ids[k] = id
		batch[k] = store.PublishedTxn{Txn: core.NewTransaction(id,
			core.Insert("F", core.Strs(string(p), fmt.Sprintf("prot-%d", id.Seq), "fn"), p))}
	}
	if _, err := s.Publish(context.Background(), p, batch); err != nil {
		t.Fatal(err)
	}
	return ids
}

// TestTenantMaintenanceIsolation: one co-located group's maintenance —
// snapshots, compaction, watch subscriptions, idempotency records — must
// neither observe nor disturb another group's state.
func TestTenantMaintenanceIsolation(t *testing.T) {
	ctx := context.Background()
	schema := storetest.Schema(t)
	node, err := OpenNode("")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	noisy, err := node.OpenGroup("noisy", schema)
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := node.OpenGroup("quiet", schema)
	if err != nil {
		t.Fatal(err)
	}

	// Drive both groups with reconciling peers so the noisy group's
	// compaction preconditions (peer frontiers, snapshot coverage) hold.
	mkPeer := func(s *Store, id core.PeerID) *store.Peer {
		p, err := store.NewPeer(ctx, id, schema, storetest.TrustAll(1), s)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	nAlice, nBob := mkPeer(noisy, "alice"), mkPeer(noisy, "bob")
	qAlice, qBob := mkPeer(quiet, "alice"), mkPeer(quiet, "bob")
	for i := 0; i < 3; i++ {
		if _, err := nAlice.Edit(core.Insert("F", core.Strs("rat", fmt.Sprintf("np%d", i), "fn"), "alice")); err != nil {
			t.Fatal(err)
		}
		if _, err := nAlice.PublishAndReconcile(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := nBob.PublishAndReconcile(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := qAlice.Edit(core.Insert("F", core.Strs("mouse", "qp0", "fn"), "alice")); err != nil {
		t.Fatal(err)
	}
	if _, err := qAlice.PublishAndReconcile(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := qBob.PublishAndReconcile(ctx); err != nil {
		t.Fatal(err)
	}

	// Noisy snapshots and compacts its whole log.
	horizon, err := noisy.Snapshot(ctx)
	if err != nil || horizon == 0 {
		t.Fatalf("noisy snapshot: %d, %v", horizon, err)
	}
	if err := noisy.CompactBefore(ctx, noisy.CompactionHorizon()); err != nil {
		t.Fatalf("noisy compact: %v", err)
	}

	// The quiet group saw none of it: no snapshot retained, no epochs
	// compacted — a fresh reconciler still replays from epoch 0.
	if snap, err := quiet.LatestSnapshot(ctx); err != nil || snap != nil {
		t.Fatalf("quiet group inherited a snapshot: %+v, %v", snap, err)
	}
	if got := quiet.CompactedBefore(); got != 0 {
		t.Fatalf("quiet group compacted to %d by noisy maintenance", got)
	}
	fresh := mkPeer(quiet, "fresh")
	res, err := fresh.PublishAndReconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 1 {
		t.Fatalf("quiet fresh peer accepted %d txns, want its group's 1", len(res.Accepted))
	}
	for _, tup := range fresh.Instance().Tuples("F") {
		if tup[0].String() != "mouse" {
			t.Fatalf("quiet fresh peer imported foreign tuple %v", tup)
		}
	}

	// Watch isolation: a quiet-group subscription never wakes for noisy
	// publishes (the stores' watch machinery is fully disjoint), and does
	// wake for its own.
	qFrontier := quiet.stableEpoch()
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch, err := quiet.WatchFrom(wctx, qFrontier)
	if err != nil {
		t.Fatal(err)
	}
	pubBatch(t, noisy, "alice", 1000, 1)
	select {
	case ev, ok := <-ch:
		if ok {
			t.Fatalf("quiet watcher woke for noisy publish: %+v", ev)
		}
		t.Fatal("quiet watcher closed unexpectedly")
	case <-time.After(50 * time.Millisecond):
	}
	quietIDs := pubBatch(t, quiet, "alice", 2000, 1)
	select {
	case ev := <-ch:
		if len(ev.Txns) != 1 || ev.Txns[0].Txn.ID != quietIDs[0] {
			t.Fatalf("quiet watcher got wrong window: %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("quiet watcher missed its own group's publish")
	}

	// Idempotency isolation: the same key dedupes within a group but not
	// across groups — each tenant has its own dedup table.
	keyed := store.WithIdempotencyKey(ctx, "shared-key")
	e1, err := noisy.Publish(keyed, "alice", []store.PublishedTxn{{Txn: core.NewTransaction(
		core.TxnID{Origin: "alice", Seq: 3000},
		core.Insert("F", core.Strs("rat", "kp", "fn"), "alice"))}})
	if err != nil {
		t.Fatal(err)
	}
	eDup, err := noisy.Publish(keyed, "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	if eDup != e1 {
		t.Fatalf("same-group keyed retry returned %d, want replayed %d", eDup, e1)
	}
	before := quiet.stableEpoch()
	e2, err := quiet.Publish(keyed, "alice", []store.PublishedTxn{{Txn: core.NewTransaction(
		core.TxnID{Origin: "alice", Seq: 3001},
		core.Insert("F", core.Strs("mouse", "kp", "fn"), "alice"))}})
	if err != nil {
		t.Fatal(err)
	}
	if e2 != before+1 {
		t.Fatalf("cross-group keyed publish returned %d, want fresh epoch %d (dedup leaked across tenants)", e2, before+1)
	}
}

// TestTenantSiblingPrefixDetach: detaching a group whose encoded
// namespace is a leading fragment of a sibling's must drop only its own
// tables. Regression for the single-'_' terminator grammar, under which
// "team"'s prefix matched "team-1"'s tables ('-' encodes as "_2d") and a
// detach silently destroyed the sibling tenant.
func TestTenantSiblingPrefixDetach(t *testing.T) {
	ctx := context.Background()
	schema := storetest.Schema(t)
	for _, pair := range [][2]string{{"team", "team-1"}, {"a", "a_b"}} {
		victim, survivor := pair[0], pair[1]
		t.Run(victim+" vs "+survivor, func(t *testing.T) {
			node, err := OpenNode("")
			if err != nil {
				t.Fatal(err)
			}
			defer node.Close()
			v, err := node.OpenGroup(victim, schema)
			if err != nil {
				t.Fatal(err)
			}
			s, err := node.OpenGroup(survivor, schema)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := store.NewPeer(ctx, "alice", schema, storetest.TrustAll(1), v); err != nil {
				t.Fatal(err)
			}
			if _, err := store.NewPeer(ctx, "alice", schema, storetest.TrustAll(1), s); err != nil {
				t.Fatal(err)
			}
			pubBatch(t, v, "alice", 1, 2)
			pubBatch(t, s, "alice", 1, 3)

			if err := node.CloseGroup(victim); err != nil {
				t.Fatal(err)
			}
			if err := node.DetachGroup(victim); err != nil {
				t.Fatal(err)
			}
			if got := node.StoredGroups(); len(got) != 1 || got[0] != survivor {
				t.Fatalf("StoredGroups after detach = %v, want [%q]", got, survivor)
			}
			// Detaching again must report no tables — had the old grammar
			// matched, the survivor's tables would satisfy the prefix.
			if err := node.DetachGroup(victim); err == nil {
				t.Fatalf("second DetachGroup(%q) succeeded; it matched %q's tables", victim, survivor)
			}

			// The survivor recovers from its tables alone and still serves
			// every row it published.
			if err := node.CloseGroup(survivor); err != nil {
				t.Fatal(err)
			}
			s2, err := node.OpenGroup(survivor, schema)
			if err != nil {
				t.Fatalf("reopen %q after detaching %q: %v", survivor, victim, err)
			}
			p, err := store.NewPeer(ctx, "bob", schema, storetest.TrustAll(1), s2)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.PublishAndReconcile(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Accepted) != 3 {
				t.Fatalf("survivor peer accepted %d txns after sibling detach, want 3", len(res.Accepted))
			}
		})
	}
}

// TestTenantCrashTornMultiGroupWAL: a crash tearing the shared WAL
// mid-flush voids only the group whose commit was torn. Both tenants'
// commits ride one WAL; the tear kills the final record — the second
// group's last publish — and recovery must void exactly that epoch while
// the first group keeps every row.
func TestTenantCrashTornMultiGroupWAL(t *testing.T) {
	ctx := context.Background()
	schema := storetest.Schema(t)
	dir := t.TempDir()
	node, err := OpenNode(dir)
	if err != nil {
		t.Fatal(err)
	}
	ga, err := node.OpenGroup("a", schema)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := node.OpenGroup("b", schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*Store{ga, gb} {
		if err := g.RegisterPeer(ctx, "pub", core.TrustAll(1)); err != nil {
			t.Fatal(err)
		}
	}
	var aIDs []core.TxnID
	for i := 0; i < 3; i++ {
		aIDs = append(aIDs, pubBatch(t, ga, "pub", uint64(10*i), 2)...)
	}
	var bIDs []core.TxnID
	for i := 0; i < 2; i++ {
		bIDs = append(bIDs, pubBatch(t, gb, "pub", uint64(10*i), 2)...)
	}
	// The final commit in the shared WAL: b's third publish — the one the
	// crash tears.
	tornIDs := pubBatch(t, gb, "pub", 100, 2)
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	tearLastWALRecord(t, dir)

	node2, err := OpenNode(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Close()
	if got := node2.StoredGroups(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("recovered groups %v, want [a b]", got)
	}
	ra, err := node2.OpenGroup("a", schema)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := node2.OpenGroup("b", schema)
	if err != nil {
		t.Fatal(err)
	}

	// Group a is untouched by b's torn flush.
	if got, want := ra.TxnCount(), len(aIDs); got != want {
		t.Fatalf("group a recovered %d txns, want %d", got, want)
	}
	if err := ra.RegisterPeer(ctx, "fresh", core.TrustAll(1)); err != nil {
		t.Fatal(err)
	}
	rec, err := ra.BeginReconciliation(ctx, "fresh")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Candidates) != len(aIDs) {
		t.Fatalf("group a fresh window has %d candidates, want %d", len(rec.Candidates), len(aIDs))
	}

	// Group b lost exactly the torn epoch: the two completed publishes
	// survive, the torn one is voided, and the log stays writable.
	if got, want := rb.TxnCount(), len(bIDs); got != want {
		t.Fatalf("group b recovered %d txns, want %d (torn publish must void)", got, want)
	}
	if err := rb.RegisterPeer(ctx, "fresh", core.TrustAll(1)); err != nil {
		t.Fatal(err)
	}
	rec, err = rb.BeginReconciliation(ctx, "fresh")
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[core.TxnID]bool, len(rec.Candidates))
	for _, c := range rec.Candidates {
		got[c.Txn.ID] = true
	}
	for _, id := range bIDs {
		if !got[id] {
			t.Errorf("group b lost completed txn %s", id)
		}
	}
	for _, id := range tornIDs {
		if got[id] {
			t.Errorf("group b torn txn %s survived recovery", id)
		}
	}
	retry := pubBatch(t, rb, "pub", 200, 1)
	rec, err = rb.BeginReconciliation(ctx, "fresh")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Candidates) != 1 || rec.Candidates[0].Txn.ID != retry[0] {
		t.Fatalf("group b retry after torn recovery not delivered: %+v", rec.Candidates)
	}
}
