package central

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/store"
)

// TestConcurrentPublishReconcileStress drives the sharded store from many
// goroutines at once — publishers racing into epochs while reconcilers
// consume — and asserts the §5.2.1 invariants hold under -race:
//
//   - epochs are allocated densely, each to exactly one publisher, and the
//     epochs one publisher observes are strictly monotonic;
//   - no transaction is lost: every published transaction is indexed,
//     delivered to every reconciler exactly once (no redelivery), and
//     present in the replay log;
//   - the stable-epoch rule holds: a reconciliation's window never skips an
//     epoch.
func TestConcurrentPublishReconcileStress(t *testing.T) {
	const (
		publishers = 4
		recons     = 3
		rounds     = 20
		perBatch   = 3
	)
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	s := MustOpenMemory(schema)
	defer s.Close()
	ctx := context.Background()

	pubIDs := make([]core.PeerID, publishers)
	for i := range pubIDs {
		pubIDs[i] = core.PeerID(fmt.Sprintf("pub%d", i))
		if err := s.RegisterPeer(ctx, pubIDs[i], core.TrustAll(1)); err != nil {
			t.Fatal(err)
		}
	}
	recIDs := make([]core.PeerID, recons)
	for i := range recIDs {
		recIDs[i] = core.PeerID(fmt.Sprintf("rec%d", i))
		if err := s.RegisterPeer(ctx, recIDs[i], core.TrustAll(1)); err != nil {
			t.Fatal(err)
		}
	}

	var (
		mu        sync.Mutex
		allEpochs = make(map[core.Epoch]core.PeerID)
		published = make(map[core.TxnID]bool)
		errs      []error
	)
	fail := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	// Publishers: each runs its own engine and ships `rounds` batches,
	// checking per-publisher epoch monotonicity as it goes.
	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			eng := core.NewEngine(pubIDs[p], schema, core.TrustAll(1))
			var last core.Epoch
			for r := 0; r < rounds; r++ {
				batch := make([]store.PublishedTxn, 0, perBatch)
				ids := make([]core.TxnID, 0, perBatch)
				for k := 0; k < perBatch; k++ {
					x, err := eng.NewLocalTransaction(core.Insert("F",
						core.Strs(fmt.Sprintf("org%d", p), fmt.Sprintf("prot-%d-%d", r, k), "fn"),
						pubIDs[p]))
					if err != nil {
						fail(err)
						return
					}
					batch = append(batch, store.PublishedTxn{Txn: x, Antecedents: eng.LocalAntecedents(x.ID)})
					ids = append(ids, x.ID)
				}
				epoch, err := s.Publish(ctx, pubIDs[p], batch)
				if err != nil {
					fail(err)
					return
				}
				if epoch <= last {
					fail(fmt.Errorf("publisher %d: epoch %d not after %d", p, epoch, last))
					return
				}
				last = epoch
				mu.Lock()
				if owner, dup := allEpochs[epoch]; dup {
					fail(fmt.Errorf("epoch %d allocated to both %s and %s", epoch, owner, pubIDs[p]))
				}
				allEpochs[epoch] = pubIDs[p]
				for _, id := range ids {
					published[id] = true
				}
				mu.Unlock()
			}
		}(p)
	}

	// Reconcilers: poll BeginReconciliation while publishing is in flight,
	// accepting everything; every candidate must be new (the store never
	// redelivers) and the epoch window must advance without gaps.
	stop := make(chan struct{})
	var recWG sync.WaitGroup
	seen := make([]map[core.TxnID]bool, recons)
	for q := 0; q < recons; q++ {
		seen[q] = make(map[core.TxnID]bool)
		recWG.Add(1)
		go func(q int) {
			defer recWG.Done()
			var lastTo core.Epoch
			cycle := func() {
				rec, err := s.BeginReconciliation(ctx, recIDs[q])
				if err != nil {
					fail(err)
					return
				}
				if rec.FromEpoch != lastTo {
					fail(fmt.Errorf("reconciler %d: window (%d,%d] does not continue from %d",
						q, rec.FromEpoch, rec.ToEpoch, lastTo))
					return
				}
				lastTo = rec.ToEpoch
				accepted := make([]core.TxnID, 0, len(rec.Candidates))
				for _, c := range rec.Candidates {
					if seen[q][c.Txn.ID] {
						fail(fmt.Errorf("reconciler %d: %s redelivered", q, c.Txn.ID))
						return
					}
					seen[q][c.Txn.ID] = true
					accepted = append(accepted, c.Txn.ID)
				}
				// Alternate the two recording paths under load.
				if len(accepted)%2 == 0 {
					err = s.RecordDecisions(ctx, recIDs[q], rec.Recno, accepted, nil)
				} else {
					err = s.RecordDecisionsBatch(ctx, []store.DecisionBatch{{
						Peer: recIDs[q], Recno: rec.Recno, Accepted: accepted,
					}})
				}
				if err != nil {
					fail(err)
				}
			}
			for {
				select {
				case <-stop:
					// Final drain: all epochs are finished now, so one more
					// pass must surface everything still unseen.
					cycle()
					return
				default:
					cycle()
				}
			}
		}(q)
	}

	pubWG.Wait()
	close(stop)
	recWG.Wait()

	mu.Lock()
	defer mu.Unlock()
	for _, err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Dense allocation: epochs 1..publishers*rounds each used exactly once.
	wantEpochs := publishers * rounds
	if len(allEpochs) != wantEpochs {
		t.Fatalf("allocated %d epochs, want %d", len(allEpochs), wantEpochs)
	}
	for e := core.Epoch(1); e <= core.Epoch(wantEpochs); e++ {
		if _, ok := allEpochs[e]; !ok {
			t.Fatalf("epoch %d never allocated", e)
		}
	}

	// No lost transactions: the index, every reconciler, and the replay
	// log all hold the full published set.
	wantTxns := publishers * rounds * perBatch
	if got := s.TxnCount(); got != wantTxns {
		t.Fatalf("store indexed %d txns, want %d", got, wantTxns)
	}
	for q := 0; q < recons; q++ {
		if len(seen[q]) != wantTxns {
			t.Errorf("reconciler %d saw %d txns, want %d", q, len(seen[q]), wantTxns)
		}
		for id := range published {
			if !seen[q][id] {
				t.Errorf("reconciler %d never received %s", q, id)
			}
		}
	}
	log, _, err := s.ReplayFor(ctx, recIDs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != wantTxns {
		t.Errorf("replay log holds %d txns, want %d", len(log), wantTxns)
	}
	for i := 1; i < len(log); i++ {
		if log[i-1].Txn.Order >= log[i].Txn.Order {
			t.Fatalf("replay log out of order at %d: %d >= %d", i, log[i-1].Txn.Order, log[i].Txn.Order)
		}
	}
}
