package central

import (
	"context"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/store"
	"orchestra/internal/store/storetest"
)

func factory(t *testing.T, schema *core.Schema) (func(core.PeerID) store.Store, func()) {
	s := MustOpenMemory(schema)
	return func(core.PeerID) store.Store { return s }, func() { s.Close() }
}

func TestConformance(t *testing.T) {
	storetest.RunConformance(t, factory)
}

func TestWatchConformance(t *testing.T) {
	storetest.RunWatchConformance(t, factory)
}

// TestMultiGroupConformance runs the tenancy suite over a Node hosting
// every group in one shared in-memory database.
func TestMultiGroupConformance(t *testing.T) {
	storetest.RunMultiGroupConformance(t, factory,
		func(t *testing.T, schema *core.Schema) (func(string, core.PeerID) store.Store, func()) {
			node, err := OpenNode("")
			if err != nil {
				t.Fatal(err)
			}
			stores := make(map[string]*Store)
			return func(group string, _ core.PeerID) store.Store {
				if s, ok := stores[group]; ok {
					return s
				}
				s, err := node.OpenGroup(group, schema)
				if err != nil {
					t.Fatal(err)
				}
				stores[group] = s
				return s
			}, func() { node.Close() }
		})
}

// TestUnfinishedEpochBlocksStable: a reconciler must not see past an
// unfinished epoch, even when later epochs are complete (§5.2.1).
func TestUnfinishedEpochBlocksStable(t *testing.T) {
	schema := storetest.Schema(t)
	s := MustOpenMemory(schema)
	defer s.Close()
	ctx := context.Background()
	for _, p := range []core.PeerID{"a", "b", "c"} {
		if err := s.RegisterPeer(ctx, p, core.TrustAll(1)); err != nil {
			t.Fatal(err)
		}
	}
	// a starts publishing epoch 1 but stalls before finishing.
	e1, err := s.PublishBegin("a")
	if err != nil {
		t.Fatal(err)
	}
	txnA := store.PublishedTxn{Txn: core.NewTransaction(
		core.TxnID{Origin: "a", Seq: 0},
		core.Insert("F", core.Strs("rat", "p1", "va"), "a"))}
	if err := s.PublishWrite("a", e1, []store.PublishedTxn{txnA}); err != nil {
		t.Fatal(err)
	}

	// b publishes epoch 2 completely.
	txnB := store.PublishedTxn{Txn: core.NewTransaction(
		core.TxnID{Origin: "b", Seq: 0},
		core.Insert("F", core.Strs("mouse", "p2", "vb"), "b"))}
	if _, err := s.Publish(ctx, "b", []store.PublishedTxn{txnB}); err != nil {
		t.Fatal(err)
	}

	// c reconciles: the stable epoch precedes e1, so it sees nothing.
	rec, err := s.BeginReconciliation(ctx, "c")
	if err != nil {
		t.Fatal(err)
	}
	if rec.ToEpoch != e1-1 || len(rec.Candidates) != 0 {
		t.Fatalf("rec = %+v, want empty window before epoch %d", rec, e1)
	}

	// a finishes; now both epochs become visible.
	if err := s.PublishFinish("a", e1); err != nil {
		t.Fatal(err)
	}
	rec, err = s.BeginReconciliation(ctx, "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Candidates) != 2 {
		t.Fatalf("candidates after finish = %d, want 2", len(rec.Candidates))
	}
}

// TestDurabilityAcrossReopen: a store recovered from disk serves the same
// reconciliation state.
func TestDurabilityAcrossReopen(t *testing.T) {
	schema := storetest.Schema(t)
	dir := t.TempDir()
	ctx := context.Background()

	s, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := store.NewPeer(ctx, "pa", schema, core.TrustAll(1), s)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := store.NewPeer(ctx, "pb", schema, core.TrustAll(1), s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pa.Edit(core.Insert("F", core.Strs("rat", "p1", "v1"), "pa")); err != nil {
		t.Fatal(err)
	}
	if _, err := pa.PublishAndReconcile(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := pb.PublishAndReconcile(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: peers re-register (trust is in-memory) and resume.
	s2, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.TxnCount() != 1 {
		t.Fatalf("recovered %d txns, want 1", s2.TxnCount())
	}
	if err := s2.RegisterPeer(ctx, "pb", core.TrustAll(1)); err != nil {
		t.Fatal(err)
	}
	n, err := s2.CurrentRecno(ctx, "pb")
	if err != nil || n != 1 {
		t.Fatalf("pb recno after recovery = %d, %v", n, err)
	}
	// pb already accepted the txn, so a fresh reconciliation is empty.
	rec, err := s2.BeginReconciliation(ctx, "pb")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Candidates) != 0 {
		t.Errorf("candidates after recovery = %v", rec.Candidates)
	}
}

// TestCheckpointPreservesState: snapshot + WAL truncation keeps the same
// recoverable state.
func TestCheckpointPreservesState(t *testing.T) {
	schema := storetest.Schema(t)
	dir := t.TempDir()
	ctx := context.Background()
	s, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := store.NewPeer(ctx, "pa", schema, core.TrustAll(1), s)
	pa.Edit(core.Insert("F", core.Strs("rat", "p1", "v"), "pa"))
	pa.PublishAndReconcile(ctx)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	pa.Edit(core.Insert("F", core.Strs("mouse", "p2", "w"), "pa"))
	pa.PublishAndReconcile(ctx)
	s.Close()

	s2, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.TxnCount() != 2 {
		t.Errorf("recovered %d txns, want 2", s2.TxnCount())
	}
}

func TestUnknownPeerOperations(t *testing.T) {
	schema := storetest.Schema(t)
	s := MustOpenMemory(schema)
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Publish(ctx, "ghost", nil); err == nil {
		t.Error("publish by unknown peer accepted")
	}
	if _, err := s.BeginReconciliation(ctx, "ghost"); err == nil {
		t.Error("reconciliation by unknown peer accepted")
	}
	if err := s.RecordDecisions(ctx, "ghost", 1, nil, nil); err == nil {
		t.Error("decisions by unknown peer accepted")
	}
	if _, err := s.CurrentRecno(ctx, "ghost"); err == nil {
		t.Error("recno of unknown peer accepted")
	}
	if _, err := s.PublishBegin("ghost"); err == nil {
		t.Error("publish begin by unknown peer accepted")
	}
}

func TestPublishProtocolErrors(t *testing.T) {
	schema := storetest.Schema(t)
	s := MustOpenMemory(schema)
	defer s.Close()
	ctx := context.Background()
	s.RegisterPeer(ctx, "a", core.TrustAll(1))
	s.RegisterPeer(ctx, "b", core.TrustAll(1))
	e, err := s.PublishBegin("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PublishWrite("b", e, nil); err == nil {
		t.Error("write into another peer's epoch accepted")
	}
	if err := s.PublishFinish("b", e); err == nil {
		t.Error("finish of another peer's epoch accepted")
	}
	if err := s.PublishFinish("a", e); err != nil {
		t.Fatal(err)
	}
	if err := s.PublishWrite("a", e, nil); err == nil {
		t.Error("write into finished epoch accepted")
	}
	if err := s.RecordDecisions(ctx, "a", 99, nil, nil); err == nil {
		t.Error("decisions for future recno accepted")
	}
}
