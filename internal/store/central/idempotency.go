package central

import (
	"context"
	"fmt"

	"orchestra/internal/core"
	"orchestra/internal/reldb"
	"orchestra/internal/store"
)

// This file implements idempotency-key dedup for the non-idempotent store
// operations (Publish, RecordDecisionsBatch, BeginReconciliation, Snapshot,
// CompactBefore). A keyed call executes once; its result is recorded in the
// idempotency table *inside the operation's own commit* — riding the
// existing commit machinery, so a crash can never separate an operation
// from its dedup record — and every later delivery of the same key replays
// the recorded result instead of re-executing. The in-memory entry map
// additionally serializes concurrent duplicates: the first delivery owns
// execution, later ones block until it finishes. A failed owner releases
// the key, so a retry after a genuine failure re-executes.
//
// BeginReconciliation needs dedup even though the issue's list names only
// the write ops: a reconciliation window is delivered once — the store
// advances the peer's frontier past it — so a retried begin whose first
// delivery committed would silently lose the window's candidates forever.
// The dedup record memoizes (recno, from, to); candidates are recomputed
// from the window on replay, which is sound because the reconciling peer is
// the only writer of its decided set and it is blocked in this very call.
//
// # Retention
//
// Dedup records do not live forever: every record carries an epoch
// watermark (the epoch its operation committed at, or the stable epoch it
// observed), and CompactBefore prunes records — durable rows and in-memory
// entries alike — whose watermark lies strictly below the compaction
// horizon. That is past any retry: the horizon never passes a registered
// peer's reconciliation frontier, and every record's watermark is at or
// above its peer's frontier at commit time (a publish's epoch is above the
// publisher's frontier; a begin's ToEpoch is the frontier it installed; a
// decide's stable epoch is at or above it). A peer advances its frontier
// only through a later store call, and a client issues its store calls
// sequentially — so while a call's retries are still in flight, its
// peer's frontier (and therefore the horizon) cannot have caught up to the
// record's watermark.

// Operation names recorded with each key (guarding cross-op key reuse).
const (
	opPublish  = "publish"
	opDecide   = "decide"
	opBegin    = "begin"
	opSnapshot = "snapshot"
	opCompact  = "compact"
)

// idemEntry is one key's state: in-flight (done open) or completed (done
// closed, result fields valid).
type idemEntry struct {
	op   string
	done chan struct{}
	err  error
	// Results by op: publish/snapshot/compact memoize an epoch; begin
	// memoizes its window; decide has no result beyond success.
	e     core.Epoch
	recno int
	from  core.Epoch
	to    core.Epoch
}

// watermark is the entry's retention bound: the record may be pruned once
// the compaction horizon passes it (see the package retention rationale
// above). Publish/snapshot/compact memoize their epoch in e; decide stores
// the stable epoch it observed there; begin uses its window's end.
func (en *idemEntry) watermark() core.Epoch {
	if en.op == opBegin {
		return en.to
	}
	return en.e
}

// beginIdem resolves a key: a completed duplicate returns its entry with
// dup=true; otherwise the key is registered in-flight and the caller owns
// executing the operation (and must finishIdem). Concurrent duplicates
// block here until the owner finishes.
func (s *Store) beginIdem(key store.IdempotencyKey, op string) (*idemEntry, bool, error) {
	for {
		s.idemMu.Lock()
		en := s.idem[key]
		if en == nil {
			en = &idemEntry{op: op, done: make(chan struct{})}
			s.idem[key] = en
			s.idemMu.Unlock()
			return en, false, nil
		}
		s.idemMu.Unlock()
		if en.op != op {
			return nil, false, fmt.Errorf("central: idempotency key %q reused across operations (%s, then %s)", key, en.op, op)
		}
		<-en.done
		if en.err == nil {
			s.counters.ObserveDedupHit()
			return en, true, nil
		}
		// The owner failed and released the key; loop to take ownership and
		// re-execute.
	}
}

// finishIdem publishes the owner's outcome. Failures release the key so the
// next delivery re-executes; successes leave the completed entry for
// duplicates to replay.
func (s *Store) finishIdem(key store.IdempotencyKey, en *idemEntry, err error) {
	s.idemMu.Lock()
	en.err = err
	if err != nil {
		delete(s.idem, key)
	}
	close(en.done)
	s.idemMu.Unlock()
}

// idemRow encodes a dedup record for insertion inside an operation's
// commit. The idempotency table is last in the table lock order.
func idemRow(key store.IdempotencyKey, op string, r1, r2, r3 int64) reldb.Row {
	return reldb.Row{reldb.Str(string(key)), reldb.Str(op), reldb.Int(r1), reldb.Int(r2), reldb.Int(r3)}
}

// loadIdem rebuilds the completed-entry map from the idempotency table
// (within loadCaches' recovery view).
func (s *Store) loadIdem(tx *reldb.Tx) error {
	return tx.Scan(s.idemTab, func(r reldb.Row) bool {
		en := &idemEntry{op: r[1].S(), done: make(chan struct{})}
		switch en.op {
		case opPublish, opSnapshot, opCompact, opDecide:
			en.e = core.Epoch(r[2].I())
		case opBegin:
			en.recno = int(r[2].I())
			en.from = core.Epoch(r[3].I())
			en.to = core.Epoch(r[4].I())
		}
		close(en.done)
		s.idem[store.IdempotencyKey(r[0].S())] = en
		return true
	})
}

// prunableIdem collects the completed dedup keys whose watermark lies
// strictly below the compaction horizon e — records whose retries are
// provably over (see the retention rationale above). In-flight entries are
// skipped: they have no durable row yet, and their owner still needs them.
func (s *Store) prunableIdem(e core.Epoch) []store.IdempotencyKey {
	s.idemMu.Lock()
	defer s.idemMu.Unlock()
	var keys []store.IdempotencyKey
	for k, en := range s.idem {
		select {
		case <-en.done:
		default:
			continue // in-flight
		}
		if en.err == nil && en.watermark() < e {
			keys = append(keys, k)
		}
	}
	return keys
}

// dropIdem removes pruned keys from the in-memory map once their durable
// rows are committed away. Completed entries never mutate, so collecting
// them first and dropping after the commit cannot race an owner.
func (s *Store) dropIdem(keys []store.IdempotencyKey) {
	s.idemMu.Lock()
	for _, k := range keys {
		delete(s.idem, k)
	}
	s.idemMu.Unlock()
}

// CanDedupe implements store.IdempotencyProber: keyed calls are deduped.
func (s *Store) CanDedupe(context.Context) bool { return true }

// replayReconciliation rebuilds the answer of a deduped begin: the memoized
// recno and window, with the candidates recomputed against the transaction
// index. Sound because only the peer itself mutates its decided set, and
// the peer is blocked in this call.
//
// The recomputation scans the index by epoch range (replayCandidatesLocked)
// instead of re-walking the epoch metas: compaction may void the window's
// epochs between the first execution and a late duplicate delivery (the
// begin-commit advanced the peer's frontier past the window, so compaction
// considers the peer caught up), but it can never drop the window's
// candidate payloads — a candidate is by definition undecided by this peer,
// which keeps it in every snapshot's residue, and residue entries stay
// indexed with their epochs. A candidate the peer decided since the first
// delivery is excluded either way: by the decided-set filter while its
// cache entry lives, or by its index entry being released once all peers
// settled it — and the client's engine drops already-decided candidates
// and already-applied extension transactions regardless.
func (s *Store) replayReconciliation(peer core.PeerID, en *idemEntry) (*store.Reconciliation, error) {
	pm, err := s.peer(peer)
	if err != nil {
		return nil, err
	}
	lockContended(&pm.mu, s.counters.ObservePeerContention)
	defer pm.mu.Unlock()
	// Same guard as beginReconciliation: a recovered store may know the
	// peer but not its in-process trust policy, and candidate priorities
	// cannot be computed against nothing.
	if pm.trust == nil {
		return nil, fmt.Errorf("central: peer %s has no trust policy (re-register after recovery)", peer)
	}
	return &store.Reconciliation{
		Recno:      en.recno,
		FromEpoch:  en.from,
		ToEpoch:    en.to,
		Candidates: s.replayCandidatesLocked(pm, peer, en.from, en.to),
	}, nil
}
