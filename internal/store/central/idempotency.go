package central

import (
	"context"
	"fmt"

	"orchestra/internal/core"
	"orchestra/internal/reldb"
	"orchestra/internal/store"
)

// This file implements idempotency-key dedup for the non-idempotent store
// operations (Publish, RecordDecisionsBatch, BeginReconciliation, Snapshot,
// CompactBefore). A keyed call executes once; its result is recorded in the
// idempotency table *inside the operation's own commit* — riding the
// existing commit machinery, so a crash can never separate an operation
// from its dedup record — and every later delivery of the same key replays
// the recorded result instead of re-executing. The in-memory entry map
// additionally serializes concurrent duplicates: the first delivery owns
// execution, later ones block until it finishes. A failed owner releases
// the key, so a retry after a genuine failure re-executes.
//
// BeginReconciliation needs dedup even though the issue's list names only
// the write ops: a reconciliation window is delivered once — the store
// advances the peer's frontier past it — so a retried begin whose first
// delivery committed would silently lose the window's candidates forever.
// The dedup record memoizes (recno, from, to); candidates are recomputed
// from the window on replay, which is sound because the reconciling peer is
// the only writer of its decided set and it is blocked in this very call.

// Operation names recorded with each key (guarding cross-op key reuse).
const (
	opPublish  = "publish"
	opDecide   = "decide"
	opBegin    = "begin"
	opSnapshot = "snapshot"
	opCompact  = "compact"
)

// idemEntry is one key's state: in-flight (done open) or completed (done
// closed, result fields valid).
type idemEntry struct {
	op   string
	done chan struct{}
	err  error
	// Results by op: publish/snapshot/compact memoize an epoch; begin
	// memoizes its window; decide has no result beyond success.
	e     core.Epoch
	recno int
	from  core.Epoch
	to    core.Epoch
}

// beginIdem resolves a key: a completed duplicate returns its entry with
// dup=true; otherwise the key is registered in-flight and the caller owns
// executing the operation (and must finishIdem). Concurrent duplicates
// block here until the owner finishes.
func (s *Store) beginIdem(key store.IdempotencyKey, op string) (*idemEntry, bool, error) {
	for {
		s.idemMu.Lock()
		en := s.idem[key]
		if en == nil {
			en = &idemEntry{op: op, done: make(chan struct{})}
			s.idem[key] = en
			s.idemMu.Unlock()
			return en, false, nil
		}
		s.idemMu.Unlock()
		if en.op != op {
			return nil, false, fmt.Errorf("central: idempotency key %q reused across operations (%s, then %s)", key, en.op, op)
		}
		<-en.done
		if en.err == nil {
			s.counters.ObserveDedupHit()
			return en, true, nil
		}
		// The owner failed and released the key; loop to take ownership and
		// re-execute.
	}
}

// finishIdem publishes the owner's outcome. Failures release the key so the
// next delivery re-executes; successes leave the completed entry for
// duplicates to replay.
func (s *Store) finishIdem(key store.IdempotencyKey, en *idemEntry, err error) {
	s.idemMu.Lock()
	en.err = err
	if err != nil {
		delete(s.idem, key)
	}
	close(en.done)
	s.idemMu.Unlock()
}

// idemRow encodes a dedup record for insertion inside an operation's
// commit. The idempotency table is last in the table lock order.
func idemRow(key store.IdempotencyKey, op string, r1, r2, r3 int64) reldb.Row {
	return reldb.Row{reldb.Str(string(key)), reldb.Str(op), reldb.Int(r1), reldb.Int(r2), reldb.Int(r3)}
}

// loadIdem rebuilds the completed-entry map from the idempotency table
// (within loadCaches' recovery view).
func (s *Store) loadIdem(tx *reldb.Tx) error {
	return tx.Scan("idempotency", func(r reldb.Row) bool {
		en := &idemEntry{op: r[1].S(), done: make(chan struct{})}
		switch en.op {
		case opPublish, opSnapshot, opCompact:
			en.e = core.Epoch(r[2].I())
		case opBegin:
			en.recno = int(r[2].I())
			en.from = core.Epoch(r[3].I())
			en.to = core.Epoch(r[4].I())
		}
		close(en.done)
		s.idem[store.IdempotencyKey(r[0].S())] = en
		return true
	})
}

// CanDedupe implements store.IdempotencyProber: keyed calls are deduped.
func (s *Store) CanDedupe(context.Context) bool { return true }

// replayReconciliation rebuilds the answer of a deduped begin: the memoized
// recno and window, with the candidates recomputed by the same walk the
// first delivery ran. Sound because only the peer itself mutates its
// decided set, and the peer is blocked in this call.
func (s *Store) replayReconciliation(peer core.PeerID, en *idemEntry) (*store.Reconciliation, error) {
	pm, err := s.peer(peer)
	if err != nil {
		return nil, err
	}
	lockContended(&pm.mu, s.counters.ObservePeerContention)
	defer pm.mu.Unlock()
	return &store.Reconciliation{
		Recno:      en.recno,
		FromEpoch:  en.from,
		ToEpoch:    en.to,
		Candidates: s.candidatesLocked(pm, peer, en.from, en.to),
	}, nil
}
