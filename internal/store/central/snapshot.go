package central

import (
	"context"
	"fmt"
	"sort"

	"orchestra/internal/core"
	"orchestra/internal/reldb"
	"orchestra/internal/store"
)

// This file implements the snapshot + compaction subsystem: periodic (or
// on-demand) global engine-state snapshots at stable-epoch boundaries, the
// bounded snapshot + tail rebuild path, and publish-log compaction behind a
// retained snapshot. The safety invariants — the reconciliation-frontier
// rule, the snapshot-coverage rule, and the residue rule — are documented
// in docs/RECOVERY.md; the differential matrix pins compaction to change
// storage only, never decisions.

// peerCopy is a consistent point-in-time copy of one peer's store state,
// taken with every peer lock held so the decision sequences of all peers
// describe the same instant.
type peerCopy struct {
	id         core.PeerID
	trust      core.Trust
	lastEpoch  core.Epoch
	recno      int
	nextSeq    int64
	decided    map[core.TxnID]core.Decision
	decidedSeq map[core.TxnID]int64
	// hw is the peer's folded decision prefix for the snapshot being
	// taken: the largest sequence such that every decision at or below it
	// references a transaction at or below the snapshot epoch. Usually
	// nextSeq; smaller when the peer has self-accepts on a finished epoch
	// the stable frontier has not reached yet (an earlier epoch still
	// open) — those decisions stay in the tail, where ReplayFrom can pair
	// them with their payloads.
	hw int64
}

// sortedPeers returns the registered peers and their metas, sorted by ID —
// the lock-acquisition order shared with RecordDecisionsBatch.
func (s *Store) sortedPeers() ([]core.PeerID, []*peerMeta) {
	s.peersMu.RLock()
	ids := make([]core.PeerID, 0, len(s.peers))
	for id := range s.peers {
		ids = append(ids, id)
	}
	s.peersMu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	pms := make([]*peerMeta, len(ids))
	for i, id := range ids {
		pms[i], _ = s.peer(id)
	}
	return ids, pms
}

// copyPeers captures every registered peer's decision state at one instant:
// all peer locks are held (in sorted order) while the maps are copied, so
// no decision can land between two peers' copies. The stable epoch is read
// inside the critical section — every decision in the copies therefore
// references transactions at or below it.
func (s *Store) copyPeers() ([]peerCopy, core.Epoch) {
	ids, pms := s.sortedPeers()
	for _, pm := range pms {
		lockContended(&pm.mu, s.counters.ObservePeerContention)
	}
	stable := s.stableEpoch()
	copies := make([]peerCopy, len(ids))
	for i, pm := range pms {
		cp := peerCopy{
			id:         ids[i],
			trust:      pm.trust,
			lastEpoch:  pm.lastEpoch,
			recno:      pm.recno,
			nextSeq:    pm.nextSeq,
			decided:    make(map[core.TxnID]core.Decision, len(pm.decided)),
			decidedSeq: make(map[core.TxnID]int64, len(pm.decidedSeq)),
		}
		for id, d := range pm.decided {
			cp.decided[id] = d
		}
		for id, seq := range pm.decidedSeq {
			cp.decidedSeq[id] = seq
		}
		copies[i] = cp
	}
	for _, pm := range pms {
		pm.mu.Unlock()
	}
	return copies, stable
}

// entriesThrough returns every indexed transaction with epoch <= e, sorted
// by global order. This covers both the live (uncompacted) epochs and the
// residue of a previous snapshot, whose entries stay indexed after their
// epochs are compacted.
func (s *Store) entriesThrough(e core.Epoch) []*entry {
	var out []*entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, en := range sh.m {
			if en.epoch <= e {
				out = append(out, en)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pub.Txn.Order < out[j].pub.Txn.Order })
	return out
}

// Snapshot implements store.Snapshotter: it serializes a global engine-state
// snapshot at the current stable epoch into the snapshots table (one atomic
// commit replaces the previously retained snapshot) and returns the epoch it
// covers. With nothing published yet it writes nothing and returns 0.
//
// The per-peer engine states are built server-side: each peer's recorded
// decisions are folded over the published log (seeded incrementally from the
// previously retained snapshot, so repeated snapshots do not re-replay
// compacted history). The residue — every transaction at or below the
// snapshot epoch not accepted by all registered peers — rides inside the
// snapshot payload so compaction can never strand a payload a future
// extension or late decision still needs.
func (s *Store) Snapshot(ctx context.Context) (core.Epoch, error) {
	key, keyed := store.IdempotencyKeyFrom(ctx)
	if !keyed {
		s.snapMu.Lock()
		defer s.snapMu.Unlock()
		return s.snapshotLocked(ctx, "")
	}
	en, dup, err := s.beginIdem(key, opSnapshot)
	if err != nil {
		return 0, err
	}
	if dup {
		return en.e, nil
	}
	s.snapMu.Lock()
	epoch, err := s.snapshotLocked(ctx, key)
	s.snapMu.Unlock()
	en.e = epoch
	s.finishIdem(key, en, err)
	return epoch, err
}

// snapshotLocked takes the snapshot under snapMu; a non-empty key rides the
// snapshot-replace commit as a dedup record.
func (s *Store) snapshotLocked(ctx context.Context, key store.IdempotencyKey) (core.Epoch, error) {
	copies, stable := s.copyPeers()
	if stable == 0 {
		return 0, nil
	}
	prior, err := s.LatestSnapshot(ctx)
	if err != nil {
		return 0, err
	}
	entries := s.entriesThrough(stable)
	logged := make([]core.LoggedTxn, len(entries))
	for i, en := range entries {
		logged[i] = core.LoggedTxn{Txn: en.pub.Txn, Antecedents: en.pub.Antecedents}
	}

	// A decision is foldable iff its transaction is at or below the
	// snapshot epoch (or already compacted, which implies it). A peer can
	// hold self-accepts above the stable frontier — a finished epoch
	// waiting on an earlier open one — and those must stay in the tail:
	// each peer's high-water mark is its longest foldable decision
	// *prefix* (sequences are dense), so that the seq > hw tail filter of
	// ReplayFrom pairs exactly with what the snapshot lacks.
	foldable := func(id core.TxnID) bool {
		en := s.lookup(id)
		return en == nil || en.epoch <= stable
	}
	for i := range copies {
		cp := &copies[i]
		type sd struct {
			seq int64
			id  core.TxnID
		}
		ordered := make([]sd, 0, len(cp.decidedSeq))
		for id, seq := range cp.decidedSeq {
			ordered = append(ordered, sd{seq: seq, id: id})
		}
		sort.Slice(ordered, func(a, b int) bool { return ordered[a].seq < ordered[b].seq })
		for _, d := range ordered {
			if !foldable(d.id) {
				break
			}
			cp.hw = d.seq
		}
	}

	snap := &store.Snapshot{Epoch: stable}
	for i := range copies {
		cp := &copies[i]
		var eng *core.Engine
		afterSeq := int64(0)
		if prior != nil {
			if ps := prior.Peer(cp.id); ps != nil {
				eng, err = core.NewEngineFromSnapshot(s.schema, cp.trust, &ps.Engine)
				if err != nil {
					return 0, fmt.Errorf("central: seed snapshot for %s: %w", cp.id, err)
				}
				afterSeq = ps.DecisionSeq
			}
		}
		if eng == nil {
			eng = core.NewEngine(cp.id, s.schema, cp.trust)
		}
		decs := make(map[core.TxnID]core.RestoredDecision)
		for id, seq := range cp.decidedSeq {
			if seq > afterSeq && seq <= cp.hw {
				decs[id] = core.RestoredDecision{Decision: cp.decided[id], Seq: seq}
			}
		}
		if err := eng.RestoreTail(logged, decs); err != nil {
			return 0, fmt.Errorf("central: snapshot state for %s: %w", cp.id, err)
		}
		snap.Peers = append(snap.Peers, store.PeerSnapshot{
			LastEpoch:   cp.lastEpoch,
			Recno:       cp.recno,
			DecisionSeq: cp.hw,
			Engine:      *eng.ExportSnapshot(),
		})
	}
	// Residue: anything some registered peer has not accepted *within its
	// folded prefix* can still appear in a future antecedent closure or
	// have its (late, or unfolded) decision replayed after this snapshot;
	// its payload must survive compaction.
	for _, en := range entries {
		settled := true
		for i := range copies {
			cp := &copies[i]
			id := en.pub.Txn.ID
			if cp.decided[id] != core.DecisionAccept || cp.decidedSeq[id] > cp.hw {
				settled = false
				break
			}
		}
		if !settled {
			snap.Residue = append(snap.Residue, en.pub)
		}
	}

	payload := store.AppendSnapshot(nil, snap)
	err = s.db.Update(func(tx *reldb.Tx) error {
		var old []int64
		if err := tx.Scan(s.snapsTab, func(r reldb.Row) bool {
			old = append(old, r[0].I())
			return true
		}); err != nil {
			return err
		}
		for _, e := range old {
			if _, err := tx.Delete(s.snapsTab, reldb.Int(e)); err != nil {
				return err
			}
		}
		if err := tx.Insert(s.snapsTab, reldb.Row{reldb.Int(int64(stable)), reldb.Bytes(payload)}); err != nil {
			return err
		}
		if key != "" {
			return tx.Insert(s.idemTab, idemRow(key, opSnapshot, int64(stable), 0, 0))
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	s.snapState.mu.Lock()
	s.snapState.epoch = stable
	s.snapState.hw = make(map[core.PeerID]int64, len(copies))
	s.snapState.covered = make(map[core.PeerID]bool, len(copies))
	for i := range copies {
		s.snapState.hw[copies[i].id] = copies[i].hw
		s.snapState.covered[copies[i].id] = true
	}
	s.snapState.residue = make(map[core.TxnID]bool, len(snap.Residue))
	for i := range snap.Residue {
		s.snapState.residue[snap.Residue[i].Txn.ID] = true
	}
	s.snapState.mu.Unlock()
	s.counters.ObserveSnapshot()
	return stable, nil
}

// LatestSnapshot implements store.SnapshotReplayer: the most recent
// retained snapshot, decoded fresh (callers get private transaction
// copies), or nil if none has been taken. Residue encodings are re-warmed
// before the transactions reach reconciling engines.
func (s *Store) LatestSnapshot(_ context.Context) (*store.Snapshot, error) {
	var payload []byte
	err := s.db.View(func(tx *reldb.Tx) error {
		best := int64(-1)
		return tx.Scan(s.snapsTab, func(r reldb.Row) bool {
			if e := r[0].I(); e > best {
				best = e
				payload = append(payload[:0], r[1].Raw()...)
			}
			return true
		})
	})
	if err != nil {
		return nil, err
	}
	if payload == nil {
		return nil, nil
	}
	snap, err := store.DecodeSnapshot(payload)
	if err != nil {
		return nil, fmt.Errorf("central: retained snapshot: %w", err)
	}
	for i := range snap.Residue {
		snap.Residue[i].Txn.PrecomputeEncodings(s.schema)
	}
	return snap, nil
}

// ReplayFrom implements store.SnapshotReplayer: the published tail above
// the given epoch in global order, plus the peer's decisions recorded after
// the afterSeq high-water mark. The tail never needs compacted payloads:
// from must be at or above the compaction horizon (snapshot epochs always
// are).
func (s *Store) ReplayFrom(_ context.Context, peer core.PeerID, from core.Epoch, afterSeq int64) ([]store.PublishedTxn, map[core.TxnID]core.RestoredDecision, error) {
	pm, err := s.peer(peer)
	if err != nil {
		return nil, nil, err
	}
	s.snapState.mu.RLock()
	compacted := s.snapState.compacted
	s.snapState.mu.RUnlock()
	if from < compacted {
		return nil, nil, fmt.Errorf("central: replay from epoch %d crosses the compaction horizon %d", from, compacted)
	}
	s.epochMu.RLock()
	maxE := s.maxE
	s.epochMu.RUnlock()
	var log []store.PublishedTxn
	for e := from + 1; e <= maxE; e++ {
		em := s.epoch(e)
		if em == nil {
			continue
		}
		for _, id := range em.txnIDs() {
			if en := s.lookup(id); en != nil {
				log = append(log, en.pub)
			}
		}
	}
	lockContended(&pm.mu, s.counters.ObservePeerContention)
	defer pm.mu.Unlock()
	decisions := make(map[core.TxnID]core.RestoredDecision)
	for id, seq := range pm.decidedSeq {
		if seq > afterSeq {
			decisions[id] = core.RestoredDecision{Decision: pm.decided[id], Seq: seq}
		}
	}
	return log, decisions, nil
}

// CompactionHorizon returns the highest epoch CompactBefore would currently
// accept: the minimum of the retained snapshot's epoch, every registered
// peer's reconciliation frontier, and every attached watch subscription's
// delivery cursor. It returns 0 when no snapshot is retained or some
// registered peer is not covered by it (a fresh snapshot fixes both).
func (s *Store) CompactionHorizon() core.Epoch {
	s.snapState.mu.RLock()
	h := s.snapState.epoch
	covered := s.snapState.covered
	s.snapState.mu.RUnlock()
	if h == 0 {
		return 0
	}
	ids, pms := s.sortedPeers()
	for i, pm := range pms {
		if !covered[ids[i]] {
			return 0
		}
		lockContended(&pm.mu, s.counters.ObservePeerContention)
		le := pm.lastEpoch
		pm.mu.Unlock()
		if le < h {
			h = le
		}
	}
	if c, ok := s.minWatcherCursor(); ok && c < h {
		h = c
	}
	return h
}

// SnapshotEpoch returns the epoch of the retained snapshot (0 if none).
func (s *Store) SnapshotEpoch() core.Epoch {
	s.snapState.mu.RLock()
	defer s.snapState.mu.RUnlock()
	return s.snapState.epoch
}

// CompactedBefore returns the compaction horizon: every epoch at or below
// it has had its publish and decision rows dropped (0 = nothing compacted).
func (s *Store) CompactedBefore() core.Epoch {
	s.snapState.mu.RLock()
	defer s.snapState.mu.RUnlock()
	return s.snapState.compacted
}

// CompactBefore implements store.Snapshotter: drop the publish and decision
// rows of every epoch at or below e, in one atomic commit, and release the
// corresponding in-memory state. The call refuses to outrun the safety
// invariants (docs/RECOVERY.md): e must not exceed the retained snapshot's
// epoch or any registered peer's reconciliation frontier, and every
// registered peer must be covered by the retained snapshot. Decision rows
// recorded after the snapshot's per-peer high-water mark survive even when
// their transaction's epoch is compacted — they are the tail a
// snapshot-based rebuild replays, and the payloads they need live in the
// snapshot's residue.
func (s *Store) CompactBefore(ctx context.Context, e core.Epoch) error {
	key, keyed := store.IdempotencyKeyFrom(ctx)
	if !keyed {
		s.snapMu.Lock()
		defer s.snapMu.Unlock()
		return s.compactBeforeLocked(e, "")
	}
	en, dup, err := s.beginIdem(key, opCompact)
	if err != nil {
		return err
	}
	if dup {
		return nil
	}
	s.snapMu.Lock()
	err = s.compactBeforeLocked(e, key)
	s.snapMu.Unlock()
	en.e = e
	s.finishIdem(key, en, err)
	return err
}

// compactBeforeLocked compacts under snapMu; a non-empty key rides the
// compaction commit as a dedup record.
func (s *Store) compactBeforeLocked(e core.Epoch, key store.IdempotencyKey) error {
	s.snapState.mu.RLock()
	snapE := s.snapState.epoch
	compacted := s.snapState.compacted
	covered := s.snapState.covered
	hw := s.snapState.hw
	residue := s.snapState.residue
	s.snapState.mu.RUnlock()
	if e <= compacted {
		return nil // already compacted through e
	}
	if snapE == 0 {
		return fmt.Errorf("central: compaction requires a retained snapshot (Store.Snapshot)")
	}
	if e > snapE {
		return fmt.Errorf("central: cannot compact through epoch %d past the retained snapshot at %d", e, snapE)
	}
	ids, pms := s.sortedPeers()
	for i, pm := range pms {
		if !covered[ids[i]] {
			return fmt.Errorf("central: peer %s is not covered by the retained snapshot; take a new snapshot before compacting", ids[i])
		}
		lockContended(&pm.mu, s.counters.ObservePeerContention)
		le := pm.lastEpoch
		pm.mu.Unlock()
		if le < e {
			return fmt.Errorf("central: cannot compact through epoch %d past peer %s's reconciliation frontier %d", e, ids[i], le)
		}
	}
	// Fourth refusal rule: an attached watch subscription whose consumer has
	// not received the epochs being dropped would have its promised windows
	// destroyed out from under it — WatchFrom guarantees contiguous,
	// per-epoch windows, which the snapshot residue cannot reconstruct. The
	// cursor advances only on delivery (watch.go), so catching up lifts the
	// refusal.
	if c, ok := s.minWatcherCursor(); ok && c < e {
		return fmt.Errorf("central: cannot compact through epoch %d past an attached watcher's cursor %d", e, c)
	}

	// The epochs whose rows go away this pass, and every indexed
	// transaction at or below the horizon: the epochs being dropped now
	// plus former residue whose hold-outs have since settled (the retained
	// snapshot's residue set no longer lists them — time to release their
	// payloads too). The index still holds everything (purged below, after
	// the commit), so decision rows can be routed to their epochs.
	var dropEpochs []core.Epoch
	s.epochMu.RLock()
	for ep := compacted + 1; ep <= e; ep++ {
		if _, ok := s.epochs[ep]; ok {
			dropEpochs = append(dropEpochs, ep)
		}
	}
	s.epochMu.RUnlock()
	oldIDs := make(map[core.TxnID]bool)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, en := range sh.m {
			if en.epoch <= e {
				oldIDs[id] = true
			}
		}
		sh.mu.RUnlock()
	}

	// Dedup records whose retries are provably over ride out of existence
	// with this same commit: the horizon passing a record's watermark is
	// the retention bound (idempotency.go), so the tables cannot grow
	// without bound under retrying clients.
	pruneIdem := s.prunableIdem(e)

	// One atomic commit, tables touched in the documented lock order:
	// epochs_k, txns_k, decisions_k (shard indexes ascending within each
	// group), then meta, then idempotency.
	err := s.db.Update(func(tx *reldb.Tx) error {
		for k := 0; k < s.tableShards; k++ {
			for _, ep := range dropEpochs {
				if s.shardOf(ep) != k {
					continue
				}
				if _, err := tx.Delete(s.epochsTab[k], reldb.Int(int64(ep))); err != nil {
					return err
				}
			}
		}
		for k := 0; k < s.tableShards; k++ {
			var ords []int64
			if err := tx.Scan(s.txnsTab[k], func(r reldb.Row) bool {
				if core.Epoch(r[1].I()) <= e {
					ords = append(ords, r[0].I())
				}
				return true
			}); err != nil {
				return err
			}
			for _, ord := range ords {
				if _, err := tx.Delete(s.txnsTab[k], reldb.Int(ord)); err != nil {
					return err
				}
			}
		}
		for k := 0; k < s.tableShards; k++ {
			type decKey struct {
				peer, origin string
				seq          int64
			}
			var drop []decKey
			if err := tx.Scan(s.decisionsTab[k], func(r reldb.Row) bool {
				id := core.TxnID{Origin: core.PeerID(r[1].S()), Seq: uint64(r[2].I())}
				if en := s.lookup(id); en != nil && en.epoch > e {
					return true // retained epoch: keep
				}
				if r[4].I() <= hw[core.PeerID(r[0].S())] {
					drop = append(drop, decKey{peer: r[0].S(), origin: r[1].S(), seq: r[2].I()})
				}
				return true
			}); err != nil {
				return err
			}
			for _, d := range drop {
				if _, err := tx.Delete(s.decisionsTab[k], reldb.Str(d.peer), reldb.Str(d.origin), reldb.Int(d.seq)); err != nil {
					return err
				}
			}
		}
		if err := tx.Upsert(s.metaTab, reldb.Row{reldb.Str("compacted_before"), reldb.Int(int64(e))}); err != nil {
			return err
		}
		for _, k := range pruneIdem {
			if _, err := tx.Delete(s.idemTab, reldb.Str(string(k))); err != nil {
				return err
			}
		}
		if key != "" {
			return tx.Insert(s.idemTab, idemRow(key, opCompact, int64(e), 0, 0))
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.dropIdem(pruneIdem)

	// Release the in-memory state the rows backed. Compacted epochs become
	// void metas — finished and empty, exactly what recovery reconstructs
	// for them — and the index keeps only the *current* residue, whose
	// payloads now live solely in the snapshot; entries below the horizon
	// that the retained snapshot no longer lists (formerly residue, since
	// settled) are released along with everything else.
	s.epochMu.Lock()
	for _, ep := range dropEpochs {
		em := &epochMeta{}
		em.finished.Store(true)
		s.epochs[ep] = em
	}
	s.epochMu.Unlock()
	for id := range oldIDs {
		if residue[id] {
			continue
		}
		sh := s.shard(id)
		sh.mu.Lock()
		delete(sh.m, id)
		sh.mu.Unlock()
	}
	// Decision caches mirror the rows: entries folded into the snapshot
	// (seq <= high-water) for transactions at or below the horizon go
	// away, so a live compacted store and a reopened one serve identical
	// state.
	for i, pm := range pms {
		h := hw[ids[i]]
		lockContended(&pm.mu, s.counters.ObservePeerContention)
		for id := range oldIDs {
			if seq, ok := pm.decidedSeq[id]; ok && seq <= h {
				delete(pm.decided, id)
				delete(pm.decidedSeq, id)
			}
		}
		pm.mu.Unlock()
	}
	s.snapState.mu.Lock()
	s.snapState.compacted = e
	s.snapState.mu.Unlock()
	s.counters.ObserveCompaction(len(dropEpochs))
	return nil
}

// maybeMaintain runs the automatic snapshot/compaction policy after a
// publish: with WithSnapshotEvery(n), a snapshot is taken once the stable
// epoch is n past the retained one, and with WithCompactKeep(k) the log is
// then compacted to k epochs below the allowed horizon. Best-effort by
// design — maintenance failures never fail the publish that triggered them
// (the next publish retries), and a TryLock skips the cycle when another
// snapshot is already running.
func (s *Store) maybeMaintain(ctx context.Context) {
	if s.snapEvery <= 0 {
		return
	}
	s.snapState.mu.RLock()
	last := s.snapState.epoch
	s.snapState.mu.RUnlock()
	if int64(s.stableEpoch()-last) < s.snapEvery {
		return
	}
	if !s.snapMu.TryLock() {
		return
	}
	defer s.snapMu.Unlock()
	s.snapState.mu.RLock()
	last = s.snapState.epoch
	s.snapState.mu.RUnlock()
	if int64(s.stableEpoch()-last) < s.snapEvery {
		return
	}
	// Maintenance runs unkeyed: a snapshot or compaction triggered inside a
	// keyed publish must not consume the publish's idempotency key.
	if _, err := s.snapshotLocked(ctx, ""); err != nil {
		return
	}
	if s.compactKeep < 0 {
		return
	}
	e := s.CompactionHorizon() - core.Epoch(s.compactKeep)
	s.snapState.mu.RLock()
	compacted := s.snapState.compacted
	s.snapState.mu.RUnlock()
	if e > compacted {
		_ = s.compactBeforeLocked(e, "")
	}
}
