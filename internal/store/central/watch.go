package central

import (
	"context"
	"fmt"
	"sync"

	"orchestra/internal/core"
	"orchestra/internal/store"
)

// This file implements store.Watcher natively: subscriptions are woken by
// the stable-frontier advance itself (advanceFrontier → notifyWatchers), so
// no goroutine in this process ever polls. The broadcast is the classic
// closed-channel signal: watchSignal is closed and replaced under watchMu on
// every advance; a waiter snapshots the channel, re-checks the frontier, and
// blocks on the snapshot — the re-check after the snapshot makes a lost
// wakeup impossible (an advance between check and block closed the very
// channel the waiter holds).
//
// Each subscription materializes its own events from the shared epoch
// registry — epoch metas are immutable once finished and the index retains
// every payload — so event assembly takes no store-wide lock and a slow
// subscriber delays nobody. The subscription's cursor advances only after
// the consumer has received the event on the channel; compaction consults
// the registered cursors (snapshot.go) and refuses to drop epochs a live
// subscriber has not consumed yet.

// watchSub is one registered subscription: its cursor is the highest stable
// epoch the consumer has received. Compaction reads cursors concurrently
// with the subscription goroutine advancing them, hence the mutex.
type watchSub struct {
	mu     sync.Mutex
	cursor core.Epoch
}

func (w *watchSub) Cursor() core.Epoch {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cursor
}

func (w *watchSub) setCursor(e core.Epoch) {
	w.mu.Lock()
	w.cursor = e
	w.mu.Unlock()
}

// notifyWatchers broadcasts a frontier advance by closing the current
// signal channel and installing a fresh one. Called without any other store
// lock held (advanceFrontier releases epochMu first); watchMu is a leaf.
func (s *Store) notifyWatchers() {
	s.watchMu.Lock()
	if !s.watchClosed {
		close(s.watchSignal)
		s.watchSignal = make(chan struct{})
	}
	s.watchMu.Unlock()
}

// stableSignal snapshots the current broadcast channel. The caller must
// re-check the stable frontier after snapshotting and before blocking.
func (s *Store) stableSignal() <-chan struct{} {
	s.watchMu.Lock()
	sig := s.watchSignal
	s.watchMu.Unlock()
	return sig
}

// minWatcherCursor returns the smallest registered subscription cursor, if
// any subscription is attached — the epoch floor compaction must not pass.
func (s *Store) minWatcherCursor() (core.Epoch, bool) {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	var min core.Epoch
	found := false
	for sub := range s.watchers {
		if c := sub.Cursor(); !found || c < min {
			min, found = c, true
		}
	}
	return min, found
}

// CanWatch implements store.WatchProber: subscriptions are native here.
func (s *Store) CanWatch(context.Context) bool { return true }

// WatchFrom implements store.Watcher. Events cover contiguous windows of
// newly stable epochs starting after from; the channel closes when ctx is
// done or the store closes. Watching from below the compaction horizon
// fails — those epochs' windows no longer exist as epochs (their undecided
// payloads live on in the snapshot residue, but the per-epoch grouping the
// stream promises is gone).
func (s *Store) WatchFrom(ctx context.Context, from core.Epoch) (<-chan store.WatchEvent, error) {
	s.snapState.mu.RLock()
	compacted := s.snapState.compacted
	s.snapState.mu.RUnlock()
	if from < compacted {
		return nil, fmt.Errorf("central: cannot watch from epoch %d: epochs through %d are compacted", from, compacted)
	}
	sub := &watchSub{cursor: from}
	s.watchMu.Lock()
	if s.watchClosed {
		s.watchMu.Unlock()
		return nil, fmt.Errorf("central: store is closed")
	}
	s.watchers[sub] = struct{}{}
	s.watchMu.Unlock()
	ch := make(chan store.WatchEvent)
	go s.watchLoop(ctx, sub, ch)
	return ch, nil
}

func (s *Store) watchLoop(ctx context.Context, sub *watchSub, ch chan<- store.WatchEvent) {
	defer func() {
		s.watchMu.Lock()
		delete(s.watchers, sub)
		s.watchMu.Unlock()
		close(ch)
	}()
	cursor := sub.Cursor()
	for {
		sig := s.stableSignal()
		stable := s.stableEpoch()
		if stable <= cursor {
			select {
			case <-ctx.Done():
				return
			case <-s.watchDone:
				return
			case <-sig:
				continue
			}
		}
		ev := store.WatchEvent{From: cursor, To: stable, Txns: s.windowTxns(cursor, stable)}
		select {
		case <-ctx.Done():
			return
		case <-s.watchDone:
			return
		case ch <- ev:
			// The cursor reflects what the consumer has *received*, so a
			// send that never completes leaves compaction blocked at the
			// undelivered window, not past it.
			sub.setCursor(stable)
			cursor = stable
		}
	}
}

// windowTxns collects the published transactions of epochs (from, to] in
// epoch order (= global order). Finished epochs' transaction lists are
// immutable and read lock-free; the window is stable, so every epoch in it
// is finished.
func (s *Store) windowTxns(from, to core.Epoch) []store.PublishedTxn {
	var out []store.PublishedTxn
	for e := from + 1; e <= to; e++ {
		em := s.epoch(e)
		if em == nil {
			continue
		}
		for _, id := range em.txnIDs() {
			if en := s.lookup(id); en != nil {
				out = append(out, en.pub)
			}
		}
	}
	return out
}
