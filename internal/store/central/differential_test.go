package central

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/store"
	"orchestra/internal/store/storetest"
)

// crashImage copies the store directory while the store is still open — the
// moral equivalent of the process dying after its last commit returned: the
// copy sees exactly the bytes the WAL writes produced, with none of the
// tidying a clean Close performs.
func crashImage(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	if err := os.CopyFS(dst, os.DirFS(src)); err != nil {
		t.Fatal(err)
	}
	return dst
}

// differentialWorkload drives a deterministic multi-peer publish/reconcile
// history against a store opened with the given options and returns a full
// transcript: every step's accept/reject/defer decisions, the live
// stable-epoch answer after every step, and the state recovered from a
// crash image of the directory (replayed decisions plus the candidate
// window a fresh peer sees). Table sharding, group commit, and the epoch
// allocator may only change performance, so the transcript must be
// bit-identical across every option combination.
func differentialWorkload(t *testing.T, opts ...Option) string {
	t.Helper()
	const rounds = 4
	ctx := context.Background()
	schema := storetest.Schema(t)
	dir := t.TempDir()
	s, err := Open(schema, dir, opts...)
	if err != nil {
		t.Fatal(err)
	}

	// Unequal trust so contended keys produce real rejects, not just
	// deferrals: everyone ranks a over b over c.
	trust := core.TrustOrigins(map[core.PeerID]int{"a": 3, "b": 2, "c": 1})
	ids := []core.PeerID{"a", "b", "c"}
	peers := make(map[core.PeerID]*store.Peer, len(ids))
	for _, id := range ids {
		p, err := store.NewPeer(ctx, id, schema, trust, s)
		if err != nil {
			t.Fatal(err)
		}
		peers[id] = p
	}

	var b strings.Builder
	sortedIDs := func(xs []core.TxnID) []string {
		out := make([]string, len(xs))
		for i, x := range xs {
			out[i] = fmt.Sprintf("%s/%d", x.Origin, x.Seq)
		}
		sort.Strings(out)
		return out
	}
	for r := 0; r < rounds; r++ {
		for _, id := range ids {
			p := peers[id]
			// One unique key and one key contended across all three peers.
			if _, err := p.Edit(core.Insert("F",
				core.Strs(string(id), fmt.Sprintf("p-%d", r), "fn"), id)); err != nil {
				t.Fatal(err)
			}
			if _, err := p.Edit(core.Insert("F",
				core.Strs("shared", fmt.Sprintf("p-%d", r), "fn-"+string(id)), id)); err != nil {
				t.Fatal(err)
			}
			res, err := p.PublishAndReconcile(ctx)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&b, "r%d %s recno=%d acc=%v rej=%v def=%v stable=%d\n",
				r, id, res.Recno, sortedIDs(res.Accepted), sortedIDs(res.Rejected),
				sortedIDs(res.Deferred), s.stableEpoch())
		}
	}
	fmt.Fprintf(&b, "txns=%d\n", s.TxnCount())
	// Snapshot the directory before Close (crash image), then shut down.
	crashDir := crashImage(t, dir)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Post-crash recovery must replay to the same decisions, and a fresh
	// peer's candidate window (visibility through the recovered stable
	// frontier) must be identical — even though void recovery gaps make the
	// raw frontier number block-size dependent.
	s2, err := Open(schema, crashDir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	fmt.Fprintf(&b, "recovered txns=%d\n", s2.TxnCount())
	for _, id := range ids {
		if err := s2.RegisterPeer(ctx, id, trust); err != nil {
			t.Fatal(err)
		}
		_, decisions, err := s2.ReplayFor(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		type dec struct {
			id  string
			d   core.Decision
			seq int64
		}
		var ds []dec
		for txn, rd := range decisions {
			ds = append(ds, dec{fmt.Sprintf("%s/%d", txn.Origin, txn.Seq), rd.Decision, rd.Seq})
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i].seq < ds[j].seq })
		fmt.Fprintf(&b, "replay %s:", id)
		for _, d := range ds {
			fmt.Fprintf(&b, " %s=%d@%d", d.id, d.d, d.seq)
		}
		fmt.Fprintln(&b)
	}
	if err := s2.RegisterPeer(ctx, "fresh", core.TrustAll(1)); err != nil {
		t.Fatal(err)
	}
	rec, err := s2.BeginReconciliation(ctx, "fresh")
	if err != nil {
		t.Fatal(err)
	}
	var window []string
	for _, c := range rec.Candidates {
		window = append(window, fmt.Sprintf("%s/%d@%d", c.Txn.ID.Origin, c.Txn.ID.Seq, c.Txn.Order))
	}
	fmt.Fprintf(&b, "fresh window=%v\n", window)
	return b.String()
}

// TestDifferentialMatrix pins every combination of table shards 1/4/8 ×
// group commit on/off × epoch block size 1/8 to a bit-identical
// reconciliation transcript: identical decisions, identical live
// stable-epoch answers, identical post-crash recovered state. The knobs
// may change the physical layout and performance only. The baseline is the
// fully serial historical configuration: one shard, serial WAL commits,
// one durable sequence commit per epoch.
func TestDifferentialMatrix(t *testing.T) {
	baseline := differentialWorkload(t, WithSerialCommit(), WithEpochBlock(1), WithTableShards(1))
	if !strings.Contains(baseline, "rej=[") || !strings.Contains(baseline, "acc=[") {
		t.Fatalf("workload produced no decisions:\n%s", baseline)
	}
	// The workload must actually exercise rejects (contended keys with
	// unequal trust), or the differential would prove too little.
	if !strings.Contains(baseline, "rej=[b/") && !strings.Contains(baseline, "rej=[c/") {
		t.Fatalf("workload never rejected a transaction:\n%s", baseline)
	}
	for _, shards := range []int{1, 4, 8} {
		for _, group := range []bool{false, true} {
			for _, block := range []int{1, 8} {
				name := fmt.Sprintf("shards=%d/group=%v/block=%d", shards, group, block)
				t.Run(name, func(t *testing.T) {
					opts := []Option{WithTableShards(shards), WithEpochBlock(block)}
					if group {
						opts = append(opts, WithGroupCommit(0))
					} else {
						opts = append(opts, WithSerialCommit())
					}
					got := differentialWorkload(t, opts...)
					if got != baseline {
						t.Errorf("transcript diverged from shards=1/serial/block=1 baseline:\n--- got ---\n%s\n--- want ---\n%s", got, baseline)
					}
				})
			}
		}
	}
}

// TestShardCountPinnedToDirectory: the shard count is part of the on-disk
// layout — reopening without the option adopts the recorded count, and an
// explicit conflicting count is refused instead of silently mis-scanning.
func TestShardCountPinnedToDirectory(t *testing.T) {
	schema := storetest.Schema(t)
	dir := t.TempDir()
	s, err := Open(schema, dir, WithTableShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.TableShards() != 4 {
		t.Fatalf("TableShards() = %d, want 4", s.TableShards())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(schema, dir) // no option: adopt the recorded count
	if err != nil {
		t.Fatal(err)
	}
	if s2.TableShards() != 4 {
		t.Errorf("reopen adopted %d shards, want 4", s2.TableShards())
	}
	s2.Close()

	if _, err := Open(schema, dir, WithTableShards(8)); err == nil || !strings.Contains(err.Error(), "table shards") {
		t.Errorf("conflicting explicit shard count: err = %v, want table-shards mismatch", err)
	}
}
