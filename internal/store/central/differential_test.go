package central

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/store"
	"orchestra/internal/store/storetest"
)

// crashImage copies the store directory while the store is still open — the
// moral equivalent of the process dying after its last commit returned: the
// copy sees exactly the bytes the WAL writes produced, with none of the
// tidying a clean Close performs.
func crashImage(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	if err := os.CopyFS(dst, os.DirFS(src)); err != nil {
		t.Fatal(err)
	}
	return dst
}

// roundsMarker separates the live reconciliation transcript (identical
// across every knob, including compaction) from the storage-dependent
// recovery section.
const roundsMarker = "txns="

// differentialWorkload drives a deterministic multi-peer publish/reconcile
// history against a store opened with the given options and returns a full
// transcript: every step's accept/reject/defer decisions, the live
// stable-epoch answer after every step, and the state recovered from a
// crash image of the directory. With compact set, every round ends with a
// snapshot and a compaction to the allowed horizon — which may only change
// what is stored, never any decision, so the transcript through the
// roundsMarker must be bit-identical to the uncompacted run, and the
// recovery section (rebuilt-peer state, fresh window) bit-identical across
// every other knob.
func differentialWorkload(t *testing.T, compact bool, opts ...Option) string {
	t.Helper()
	const rounds = 4
	ctx := context.Background()
	schema := storetest.Schema(t)
	dir := t.TempDir()
	s, err := Open(schema, dir, opts...)
	if err != nil {
		t.Fatal(err)
	}

	// Unequal trust so contended keys produce real rejects, not just
	// deferrals: everyone ranks a over b over c.
	trust := core.TrustOrigins(map[core.PeerID]int{"a": 3, "b": 2, "c": 1})
	ids := []core.PeerID{"a", "b", "c"}
	peers := make(map[core.PeerID]*store.Peer, len(ids))
	for _, id := range ids {
		p, err := store.NewPeer(ctx, id, schema, trust, s)
		if err != nil {
			t.Fatal(err)
		}
		peers[id] = p
	}
	var universe []core.TxnID
	for _, id := range ids {
		for seq := uint64(0); seq < 2*rounds; seq++ {
			universe = append(universe, core.TxnID{Origin: id, Seq: seq})
		}
	}

	var b strings.Builder
	sortedIDs := func(xs []core.TxnID) []string {
		out := make([]string, len(xs))
		for i, x := range xs {
			out[i] = fmt.Sprintf("%s/%d", x.Origin, x.Seq)
		}
		sort.Strings(out)
		return out
	}
	for r := 0; r < rounds; r++ {
		for _, id := range ids {
			p := peers[id]
			// One unique key and one key contended across all three peers.
			if _, err := p.Edit(core.Insert("F",
				core.Strs(string(id), fmt.Sprintf("p-%d", r), "fn"), id)); err != nil {
				t.Fatal(err)
			}
			if _, err := p.Edit(core.Insert("F",
				core.Strs("shared", fmt.Sprintf("p-%d", r), "fn-"+string(id)), id)); err != nil {
				t.Fatal(err)
			}
			res, err := p.PublishAndReconcile(ctx)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&b, "r%d %s recno=%d acc=%v rej=%v def=%v stable=%d\n",
				r, id, res.Recno, sortedIDs(res.Accepted), sortedIDs(res.Rejected),
				sortedIDs(res.Deferred), s.stableEpoch())
		}
		if compact {
			if _, err := s.Snapshot(ctx); err != nil {
				t.Fatalf("round %d snapshot: %v", r, err)
			}
			if h := s.CompactionHorizon(); h > s.CompactedBefore() {
				if err := s.CompactBefore(ctx, h); err != nil {
					t.Fatalf("round %d compact to %d: %v", r, h, err)
				}
			}
		}
	}
	fmt.Fprintf(&b, "%s%d\n", roundsMarker, s.TxnCount())
	// Snapshot the directory before Close (crash image), then shut down.
	crashDir := crashImage(t, dir)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Post-crash recovery must land on the same user-visible state: every
	// peer rebuilt from the recovered store alone (full replay, or snapshot
	// + tail once compaction has dropped the early epochs) carries the same
	// instance and per-transaction verdicts, and a fresh peer's candidate
	// window (visibility through the recovered stable frontier) is
	// identical — even though void recovery gaps make the raw frontier
	// number block-size dependent.
	s2, err := Open(schema, crashDir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	fmt.Fprintf(&b, "recovered txns=%d\n", s2.TxnCount())
	for _, id := range ids {
		if err := s2.RegisterPeer(ctx, id, trust); err != nil {
			t.Fatal(err)
		}
	}
	if !compact {
		// Uncompacted stores also pin the raw replayed decision sequences.
		for _, id := range ids {
			_, decisions, err := s2.ReplayFor(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			type dec struct {
				id  string
				d   core.Decision
				seq int64
			}
			var ds []dec
			for txn, rd := range decisions {
				ds = append(ds, dec{fmt.Sprintf("%s/%d", txn.Origin, txn.Seq), rd.Decision, rd.Seq})
			}
			sort.Slice(ds, func(i, j int) bool { return ds[i].seq < ds[j].seq })
			fmt.Fprintf(&b, "replay %s:", id)
			for _, d := range ds {
				fmt.Fprintf(&b, " %s=%d@%d", d.id, d.d, d.seq)
			}
			fmt.Fprintln(&b)
		}
	}
	for _, id := range ids {
		p, err := store.RebuildPeer(ctx, id, schema, trust, s2)
		if err != nil {
			t.Fatalf("rebuild %s: %v", id, err)
		}
		var acc, rej []core.TxnID
		for _, x := range universe {
			if p.Engine().Applied(x) {
				acc = append(acc, x)
			}
			if p.Engine().Rejected(x) {
				rej = append(rej, x)
			}
		}
		var inst []string
		for _, tp := range p.Instance().Tuples("F") {
			inst = append(inst, tp.String())
		}
		fmt.Fprintf(&b, "rebuilt %s acc=%v rej=%v inst=%v\n",
			id, sortedIDs(acc), sortedIDs(rej), inst)
	}
	if err := s2.RegisterPeer(ctx, "fresh", core.TrustAll(1)); err != nil {
		t.Fatal(err)
	}
	rec, err := s2.BeginReconciliation(ctx, "fresh")
	if err != nil {
		t.Fatal(err)
	}
	var window []string
	for _, c := range rec.Candidates {
		window = append(window, fmt.Sprintf("%s/%d@%d", c.Txn.ID.Origin, c.Txn.ID.Seq, c.Txn.Order))
	}
	fmt.Fprintf(&b, "fresh window=%v\n", window)
	return b.String()
}

// roundsPrefix cuts a transcript at the roundsMarker: the live decision
// transcript that every knob — including compaction — must reproduce.
func roundsPrefix(t *testing.T, transcript string) string {
	t.Helper()
	i := strings.Index(transcript, roundsMarker)
	if i < 0 {
		t.Fatalf("transcript lacks %q marker:\n%s", roundsMarker, transcript)
	}
	return transcript[:i]
}

// TestDifferentialMatrix pins every combination of table shards 1/4/8 ×
// group commit on/off × epoch block size 1/8 × compaction off/on to a
// bit-identical reconciliation transcript: identical decisions, identical
// live stable-epoch answers, identical post-crash rebuilt state. The knobs
// may change the physical layout and performance only; compaction may
// additionally change what is stored (the whole point), but never a
// decision, a rebuilt peer's state, or a stable-epoch answer. The baseline
// is the fully serial historical configuration: one shard, serial WAL
// commits, one durable sequence commit per epoch.
func TestDifferentialMatrix(t *testing.T) {
	baseline := differentialWorkload(t, false, WithSerialCommit(), WithEpochBlock(1), WithTableShards(1))
	if !strings.Contains(baseline, "rej=[") || !strings.Contains(baseline, "acc=[") {
		t.Fatalf("workload produced no decisions:\n%s", baseline)
	}
	// The workload must actually exercise rejects (contended keys with
	// unequal trust), or the differential would prove too little.
	if !strings.Contains(baseline, "rej=[b/") && !strings.Contains(baseline, "rej=[c/") {
		t.Fatalf("workload never rejected a transaction:\n%s", baseline)
	}
	baselineCompact := differentialWorkload(t, true, WithSerialCommit(), WithEpochBlock(1), WithTableShards(1))
	// Compaction must not touch a single live decision or stable answer…
	if got, want := roundsPrefix(t, baselineCompact), roundsPrefix(t, baseline); got != want {
		t.Fatalf("compaction changed the live transcript:\n--- compacted ---\n%s\n--- baseline ---\n%s", got, want)
	}
	// …and must actually have compacted something, or the cell proves
	// nothing.
	if baselineCompact == baseline {
		t.Fatalf("compacting run left the storage transcript untouched:\n%s", baselineCompact)
	}
	// The adaptive window moves flush timing around at runtime; the
	// transcript must not care.
	t.Run("adaptive-group-commit", func(t *testing.T) {
		got := differentialWorkload(t, false, WithTableShards(8), WithEpochBlock(8),
			WithAdaptiveGroupCommit(0, time.Millisecond))
		if got != baseline {
			t.Errorf("transcript diverged under the adaptive window:\n--- got ---\n%s\n--- want ---\n%s", got, baseline)
		}
	})
	for _, shards := range []int{1, 4, 8} {
		for _, group := range []bool{false, true} {
			for _, block := range []int{1, 8} {
				for _, compact := range []bool{false, true} {
					name := fmt.Sprintf("shards=%d/group=%v/block=%d/compact=%v", shards, group, block, compact)
					t.Run(name, func(t *testing.T) {
						opts := []Option{WithTableShards(shards), WithEpochBlock(block)}
						if group {
							opts = append(opts, WithGroupCommit(0))
						} else {
							opts = append(opts, WithSerialCommit())
						}
						want := baseline
						if compact {
							want = baselineCompact
						}
						got := differentialWorkload(t, compact, opts...)
						if got != want {
							t.Errorf("transcript diverged from shards=1/serial/block=1 baseline:\n--- got ---\n%s\n--- want ---\n%s", got, want)
						}
					})
				}
			}
		}
	}
}

// TestShardCountPinnedToDirectory: the shard count is part of the on-disk
// layout — reopening without the option adopts the recorded count, and an
// explicit conflicting count is refused instead of silently mis-scanning.
func TestShardCountPinnedToDirectory(t *testing.T) {
	schema := storetest.Schema(t)
	dir := t.TempDir()
	s, err := Open(schema, dir, WithTableShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.TableShards() != 4 {
		t.Fatalf("TableShards() = %d, want 4", s.TableShards())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(schema, dir) // no option: adopt the recorded count
	if err != nil {
		t.Fatal(err)
	}
	if s2.TableShards() != 4 {
		t.Errorf("reopen adopted %d shards, want 4", s2.TableShards())
	}
	s2.Close()

	if _, err := Open(schema, dir, WithTableShards(8)); err == nil || !strings.Contains(err.Error(), "table shards") {
		t.Errorf("conflicting explicit shard count: err = %v, want table-shards mismatch", err)
	}
}
