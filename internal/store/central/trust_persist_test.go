package central

import (
	"context"
	"maps"
	"strings"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/store"
	"orchestra/internal/trust"
)

func trustPersistSchema(t *testing.T) *core.Schema {
	t.Helper()
	s, err := core.NewSchema(core.NewRelation("R", 1, "k", "v"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTrustSurvivesReopen: a textual policy registered before a restart
// must be live after recovery — reconciliation proceeds without
// re-registration, with candidate priorities intact.
func TestTrustSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	schema := trustPersistSchema(t)
	ctx := context.Background()

	st, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := trust.Parse("priority 7 when origin = 'pb'")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterPeer(ctx, "pa", pol); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec, err := st2.BeginReconciliation(ctx, "pa")
	if err != nil {
		t.Fatalf("reconciliation after reopen without re-registering: %v", err)
	}
	if rec == nil {
		t.Fatal("nil reconciliation")
	}
}

// TestPredicateTrustRefusedAfterReopen: in-process predicate policies
// cannot persist; after recovery the peer is refused with a clear error —
// not a crash — until it re-registers, and re-registering heals it.
func TestPredicateTrustRefusedAfterReopen(t *testing.T) {
	dir := t.TempDir()
	schema := trustPersistSchema(t)
	ctx := context.Background()

	st, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterPeer(ctx, "pa", core.TrustAll(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.BeginReconciliation(ctx, "pa"); err == nil {
		t.Fatal("reconciliation with unrecoverable trust should be refused")
	} else if !strings.Contains(err.Error(), "re-register") {
		t.Errorf("error should direct the operator to re-register: %v", err)
	}
	if err := st2.RegisterPeer(ctx, "pa", core.TrustAll(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.BeginReconciliation(ctx, "pa"); err != nil {
		t.Fatalf("reconciliation after re-registering: %v", err)
	}
}

// TestTextualReplacesThenPredicateDropsRow: re-registering with a
// predicate policy must drop the persisted text, so a later recovery does
// not resurrect the outdated textual policy.
func TestTextualReplacesThenPredicateDropsRow(t *testing.T) {
	dir := t.TempDir()
	schema := trustPersistSchema(t)
	ctx := context.Background()

	st, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := trust.Parse("priority 3 when true")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterPeer(ctx, "pa", pol); err != nil {
		t.Fatal(err)
	}
	// Replace with a predicate policy: the durable text must go away.
	if err := st.RegisterPeer(ctx, "pa", core.TrustAll(9)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.BeginReconciliation(ctx, "pa"); err == nil {
		t.Fatal("stale textual policy resurrected after predicate re-registration")
	}
}

// TestTrustPersistDelegation: the textual form is the durable format, so a
// restart-recovered store must rebuild a delegating policy's *full*
// closure from the persisted rows alone — two hops of delegation, each
// capping the priorities below it — and price updates identically to the
// pre-restart store.
func TestTrustPersistDelegation(t *testing.T) {
	dir := t.TempDir()
	schema := trustPersistSchema(t)
	ctx := context.Background()

	s, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := func(st *Store, id core.PeerID, text string) {
		t.Helper()
		if err := st.RegisterPeer(ctx, id, trust.MustParse(text)); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
	}
	for _, id := range []core.PeerID{"pa", "pb", "pc"} {
		reg(s, id, "priority 1 when true")
	}
	// hub --3--> mid --2--> leaf: hub's effective policy is its own pa:5,
	// mid's pb:4 capped to 3, and leaf's pc:9 capped to min(3,2)=2.
	reg(s, "leaf", "priority 9 when origin = 'pc'")
	reg(s, "mid", "priority 4 when origin = 'pb'\ndelegate 'leaf' priority 2")
	reg(s, "hub", "priority 5 when origin = 'pa'\ndelegate 'mid' priority 3")

	prios := func(st *Store) map[core.PeerID]int {
		t.Helper()
		eff, err := st.EffectiveTrust(ctx, "hub")
		if err != nil {
			t.Fatal(err)
		}
		out := map[core.PeerID]int{}
		for _, o := range []core.PeerID{"pa", "pb", "pc", "px"} {
			out[o] = eff.Priority(core.Insert("R", core.Strs("k1", "v"), o))
		}
		return out
	}
	want := map[core.PeerID]int{"pa": 5, "pb": 3, "pc": 2, "px": 0}
	if got := prios(s); !maps.Equal(got, want) {
		t.Fatalf("pre-restart hub priorities %v, want %v", got, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := prios(s2); !maps.Equal(got, want) {
		t.Fatalf("post-restart hub priorities %v, want %v", got, want)
	}

	// The recovered closure prices a live reconciliation: a publish from
	// pc reaches hub only through the two delegation hops.
	pcPeer, err := store.NewPeer(ctx, "pc", schema, trust.MustParse("priority 1 when true"), s2)
	if err != nil {
		t.Fatal(err)
	}
	hub, err := store.NewPeer(ctx, "hub", schema,
		trust.MustParse("priority 5 when origin = 'pa'\ndelegate 'mid' priority 3"), s2)
	if err != nil {
		t.Fatal(err)
	}
	x, err := pcPeer.Edit(core.Insert("R", core.Strs("r1", "v"), "pc"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pcPeer.PublishAndReconcile(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := hub.PublishAndReconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 1 || res.Accepted[0] != x.ID {
		t.Fatalf("hub accepted %v, want [%v]", res.Accepted, x.ID)
	}
}
