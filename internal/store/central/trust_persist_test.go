package central

import (
	"context"
	"strings"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/trust"
)

func trustPersistSchema(t *testing.T) *core.Schema {
	t.Helper()
	s, err := core.NewSchema(core.NewRelation("R", 1, "k", "v"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTrustSurvivesReopen: a textual policy registered before a restart
// must be live after recovery — reconciliation proceeds without
// re-registration, with candidate priorities intact.
func TestTrustSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	schema := trustPersistSchema(t)
	ctx := context.Background()

	st, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := trust.Parse("priority 7 when origin = 'pb'")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterPeer(ctx, "pa", pol); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec, err := st2.BeginReconciliation(ctx, "pa")
	if err != nil {
		t.Fatalf("reconciliation after reopen without re-registering: %v", err)
	}
	if rec == nil {
		t.Fatal("nil reconciliation")
	}
}

// TestPredicateTrustRefusedAfterReopen: in-process predicate policies
// cannot persist; after recovery the peer is refused with a clear error —
// not a crash — until it re-registers, and re-registering heals it.
func TestPredicateTrustRefusedAfterReopen(t *testing.T) {
	dir := t.TempDir()
	schema := trustPersistSchema(t)
	ctx := context.Background()

	st, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterPeer(ctx, "pa", core.TrustAll(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.BeginReconciliation(ctx, "pa"); err == nil {
		t.Fatal("reconciliation with unrecoverable trust should be refused")
	} else if !strings.Contains(err.Error(), "re-register") {
		t.Errorf("error should direct the operator to re-register: %v", err)
	}
	if err := st2.RegisterPeer(ctx, "pa", core.TrustAll(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.BeginReconciliation(ctx, "pa"); err != nil {
		t.Fatalf("reconciliation after re-registering: %v", err)
	}
}

// TestTextualReplacesThenPredicateDropsRow: re-registering with a
// predicate policy must drop the persisted text, so a later recovery does
// not resurrect the outdated textual policy.
func TestTextualReplacesThenPredicateDropsRow(t *testing.T) {
	dir := t.TempDir()
	schema := trustPersistSchema(t)
	ctx := context.Background()

	st, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := trust.Parse("priority 3 when true")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterPeer(ctx, "pa", pol); err != nil {
		t.Fatal(err)
	}
	// Replace with a predicate policy: the durable text must go away.
	if err := st.RegisterPeer(ctx, "pa", core.TrustAll(9)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.BeginReconciliation(ctx, "pa"); err == nil {
		t.Fatal("stale textual policy resurrected after predicate re-registration")
	}
}
