package central

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/store"
	"orchestra/internal/store/storetest"
)

// TestRebuildPeerReconstructsState: after a randomized multi-peer run, a
// peer reconstructed from the store's log via RebuildPeer has exactly the
// same instance and decision sets as the original — §5.2's soft-state
// guarantee.
func TestRebuildPeerReconstructsState(t *testing.T) {
	schema := storetest.Schema(t)
	ctx := context.Background()
	for seed := int64(1); seed <= 6; seed++ {
		s := MustOpenMemory(schema)
		const n = 4
		peers := make([]*store.Peer, n)
		for i := range peers {
			var err error
			peers[i], err = store.NewPeer(ctx, core.PeerID(fmt.Sprintf("p%d", i)), schema, core.TrustAll(1), s)
			if err != nil {
				t.Fatal(err)
			}
		}
		r := rand.New(rand.NewSource(seed))
		orgs := []string{"rat", "mouse"}
		for round := 0; round < 6; round++ {
			for _, p := range peers {
				org := orgs[r.Intn(2)]
				prot := fmt.Sprintf("prot%d", r.Intn(5))
				fn := fmt.Sprintf("f%d", r.Intn(3))
				key := core.Strs(org, prot)
				if cur, ok := p.Instance().Lookup("F", key); ok {
					if cur[2].Str() != fn {
						p.Edit(core.Modify("F", cur, core.Strs(org, prot, fn), p.ID()))
					}
				} else {
					p.Edit(core.Insert("F", core.Strs(org, prot, fn), p.ID()))
				}
				if _, err := p.PublishAndReconcile(ctx); err != nil {
					t.Fatal(err)
				}
			}
		}

		for _, orig := range peers {
			rebuilt, err := store.RebuildPeer(ctx, orig.ID(), schema, core.TrustAll(1), s)
			if err != nil {
				t.Fatalf("seed %d: rebuild %s: %v", seed, orig.ID(), err)
			}
			if !rebuilt.Instance().Equal(orig.Instance()) {
				t.Fatalf("seed %d: %s rebuilt instance diverges:\norig:    %v\nrebuilt: %v",
					seed, orig.ID(), orig.Instance().Tuples("F"), rebuilt.Instance().Tuples("F"))
			}
			// Decision sets match for every published transaction.
			log, decisions, err := s.ReplayFor(ctx, orig.ID())
			if err != nil {
				t.Fatal(err)
			}
			for _, pt := range log {
				id := pt.Txn.ID
				if orig.Engine().Applied(id) != rebuilt.Engine().Applied(id) {
					t.Fatalf("seed %d: %s applied(%s) diverges", seed, orig.ID(), id)
				}
				if orig.Engine().Rejected(id) != rebuilt.Engine().Rejected(id) {
					t.Fatalf("seed %d: %s rejected(%s) diverges", seed, orig.ID(), id)
				}
				_ = decisions
			}
		}
		s.Close()
	}
}

// TestRebuiltPeerContinues: a rebuilt peer can keep editing and reconciling
// — including reconsidering transactions it had deferred before the crash,
// since those are undecided in the store.
func TestRebuiltPeerContinues(t *testing.T) {
	schema := storetest.Schema(t)
	ctx := context.Background()
	s := MustOpenMemory(schema)
	defer s.Close()

	a, _ := store.NewPeer(ctx, "a", schema, core.TrustAll(1), s)
	b, _ := store.NewPeer(ctx, "b", schema, core.TrustAll(1), s)
	q, _ := store.NewPeer(ctx, "q", schema, core.TrustAll(1), s)

	// A conflict q defers.
	a.Edit(core.Insert("F", core.Strs("rat", "p1", "va"), "a"))
	a.PublishAndReconcile(ctx)
	b.Edit(core.Insert("F", core.Strs("rat", "p1", "vb"), "b"))
	b.PublishAndReconcile(ctx)
	res, _ := q.PublishAndReconcile(ctx)
	if len(res.Deferred) != 2 {
		t.Fatalf("setup: %+v", res)
	}

	// q crashes; rebuild it from the store.
	q2, err := store.RebuildPeer(ctx, "q", schema, core.TrustAll(1), s)
	if err != nil {
		t.Fatal(err)
	}
	// The deferred conflict is soft state: the rebuilt peer has not
	// re-seen it yet (it was associated with a past reconciliation), but
	// its instance and decisions are intact and it can continue working.
	if q2.Instance().Len("F") != 0 {
		t.Fatalf("rebuilt instance: %v", q2.Instance().Tuples("F"))
	}
	if _, err := q2.Edit(core.Insert("F", core.Strs("mouse", "p2", "w"), "q")); err != nil {
		t.Fatal(err)
	}
	if _, err := q2.PublishAndReconcile(ctx); err != nil {
		t.Fatal(err)
	}
	if q2.Instance().Len("F") != 1 {
		t.Fatalf("rebuilt peer could not continue: %v", q2.Instance().Tuples("F"))
	}
	// Its local sequence numbers continue past the pre-crash ones: the new
	// transaction must not collide in the store.
	if n, _ := s.CurrentRecno(ctx, "q"); n < 2 {
		t.Errorf("recno = %d", n)
	}
}

func TestRebuildRequiresReplayer(t *testing.T) {
	// A store without Replayer support is rejected cleanly.
	schema := storetest.Schema(t)
	ctx := context.Background()
	if _, err := store.RebuildPeer(ctx, "x", schema, core.TrustAll(1), nonReplayer{}); err == nil {
		t.Error("non-replayer store accepted")
	}
}

type nonReplayer struct{ store.Store }
