package central

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/reldb"
	"orchestra/internal/store"
	"orchestra/internal/store/storetest"
)

// tearLastWALRecord truncates the store's newest WAL segment in the middle
// of its final record — the exact on-disk state a crash mid-flush leaves
// behind. Under group commit a flush writes its records back to back in one
// buffer, so "mid-flush" and "mid-record" produce the same torn tail: every
// record before the tear survives, the torn record and everything after it
// is gone. It returns how many complete records remain.
func tearLastWALRecord(t *testing.T, dir string) int {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments in %s: %v", dir, err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the frames (4-byte length, 4-byte CRC, payload) to find the
	// start of the final record.
	var off, lastStart, lastLen int
	count := 0
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if off+8+n > len(data) {
			break
		}
		lastStart, lastLen = off, n
		off += 8 + n
		count++
	}
	if count == 0 {
		t.Fatalf("wal segment %s holds no complete record", last)
	}
	// Keep the header and roughly half the payload of the last record: a
	// torn frame, not a clean boundary.
	if err := os.Truncate(last, int64(lastStart+8+lastLen/2)); err != nil {
		t.Fatal(err)
	}
	return count - 1
}

// TestShardedCrashTornPublish kills a sharded store "mid-publish": several
// publishes have committed into different epoch-shards' tables, and the
// final publish's WAL record is torn — the state a crash leaves when some
// shards' WAL groups reached the disk and the last one didn't. Recovery
// must void the torn epoch everywhere (no txns, no epoch row, no
// self-accept decisions in any shard), keep every completed publish, leave
// the stable frontier past the void, and keep the log writable.
func TestShardedCrashTornPublish(t *testing.T) {
	const (
		shards    = 4
		publishes = 6
		perBatch  = 2
	)
	schema := storetest.Schema(t)
	dir := t.TempDir()
	ctx := context.Background()
	opts := []Option{WithTableShards(shards)}

	s, err := Open(schema, dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	peers := []core.PeerID{"pub0", "pub1", "pub2"}
	for _, p := range peers {
		if err := s.RegisterPeer(ctx, p, core.TrustAll(1)); err != nil {
			t.Fatal(err)
		}
	}
	var published []core.TxnID // txns of completed publishes
	var tornIDs []core.TxnID   // txns of the final, torn publish
	tornPeer := peers[(publishes-1)%len(peers)]
	for i := 0; i < publishes; i++ {
		p := peers[i%len(peers)]
		batch := make([]store.PublishedTxn, perBatch)
		for k := range batch {
			id := core.TxnID{Origin: p, Seq: uint64(i*perBatch + k)}
			batch[k] = store.PublishedTxn{Txn: core.NewTransaction(id,
				core.Insert("F", core.Strs(string(p), fmt.Sprintf("prot-%d-%d", i, k), "fn"), p))}
		}
		epoch, err := s.Publish(ctx, p, batch)
		if err != nil {
			t.Fatal(err)
		}
		if want := core.Epoch(i + 1); epoch != want {
			t.Fatalf("publish %d got epoch %d, want %d", i, epoch, want)
		}
		for k := range batch {
			if i == publishes-1 {
				tornIDs = append(tornIDs, batch[k].Txn.ID)
			} else {
				published = append(published, batch[k].Txn.ID)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	tearLastWALRecord(t, dir)

	// Recover. The torn publish (epoch 6, shard 6 mod 4 = 2) must have
	// vanished atomically: a publish is one commit across its shard's
	// epochs/txns/decisions tables, so recovery sees all of it or none.
	s2, err := Open(schema, dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, want := s2.TxnCount(), (publishes-1)*perBatch; got != want {
		t.Fatalf("recovered %d txns, want %d", got, want)
	}
	// No shard's tables may retain any trace of the torn epoch.
	tornEpoch := core.Epoch(publishes)
	err = s2.db.View(func(tx *reldb.Tx) error {
		for k := 0; k < shards; k++ {
			for _, tab := range []string{s2.epochsTab[k], s2.txnsTab[k]} {
				col := 0
				if tab == s2.txnsTab[k] {
					col = 1
				}
				if err := tx.Scan(tab, func(r reldb.Row) bool {
					if core.Epoch(r[col].I()) == tornEpoch {
						t.Errorf("%s still holds a row for torn epoch %d", tab, tornEpoch)
					}
					return true
				}); err != nil {
					return err
				}
			}
			if err := tx.Scan(s2.decisionsTab[k], func(r reldb.Row) bool {
				for _, id := range tornIDs {
					if core.PeerID(r[1].S()) == id.Origin && uint64(r[2].I()) == id.Seq {
						t.Errorf("%s still holds a self-accept for torn txn %s", s2.decisionsTab[k], id)
					}
				}
				return true
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The torn publisher's replayable decisions cover only its completed
	// publishes.
	if err := s2.RegisterPeer(ctx, tornPeer, core.TrustAll(1)); err != nil {
		t.Fatal(err)
	}
	_, decisions, err := s2.ReplayFor(ctx, tornPeer)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range tornIDs {
		if _, ok := decisions[id]; ok {
			t.Errorf("torn txn %s survived in %s's decisions", id, tornPeer)
		}
	}

	// The stable frontier passes over the voided epoch (and the voided
	// allocator block remainder): a fresh reconciler sees every completed
	// publish, nothing from the torn one, in one gap-free window.
	if err := s2.RegisterPeer(ctx, "fresh", core.TrustAll(1)); err != nil {
		t.Fatal(err)
	}
	rec, err := s2.BeginReconciliation(ctx, "fresh")
	if err != nil {
		t.Fatal(err)
	}
	if rec.ToEpoch < tornEpoch {
		t.Fatalf("stable frontier %d stalled at torn epoch %d", rec.ToEpoch, tornEpoch)
	}
	got := make(map[core.TxnID]bool, len(rec.Candidates))
	for _, c := range rec.Candidates {
		got[c.Txn.ID] = true
	}
	if len(got) != len(published) {
		t.Fatalf("fresh window has %d candidates, want %d", len(got), len(published))
	}
	for _, id := range published {
		if !got[id] {
			t.Errorf("completed txn %s missing from fresh window", id)
		}
	}

	// The log stays writable: the torn publisher retries above the voided
	// block and the new epoch is delivered.
	retry := []store.PublishedTxn{{Txn: core.NewTransaction(
		core.TxnID{Origin: tornPeer, Seq: 1000},
		core.Insert("F", core.Strs("retry", "prot-r", "fn"), tornPeer))}}
	epoch, err := s2.Publish(ctx, tornPeer, retry)
	if err != nil {
		t.Fatalf("publish after torn recovery: %v", err)
	}
	if epoch <= tornEpoch {
		t.Fatalf("retry epoch %d not above torn epoch %d", epoch, tornEpoch)
	}
	rec, err = s2.BeginReconciliation(ctx, "fresh")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Candidates) != 1 || rec.Candidates[0].Txn.ID != retry[0].Txn.ID {
		t.Fatalf("retry not delivered: %+v", rec.Candidates)
	}
}
