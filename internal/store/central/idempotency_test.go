package central

import (
	"context"
	"strings"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/store"
	"orchestra/internal/store/storetest"
)

// candidateIDs flattens a reconciliation's candidates to their txn IDs, in
// delivery order.
func candidateIDs(r *store.Reconciliation) []core.TxnID {
	out := make([]core.TxnID, 0, len(r.Candidates))
	for _, c := range r.Candidates {
		out = append(out, c.Txn.ID)
	}
	return out
}

// wantSameIDs asserts got holds exactly the wanted IDs, ignoring order.
func wantSameIDs(t *testing.T, what string, got []core.TxnID, want ...core.TxnID) {
	t.Helper()
	g := make(map[core.TxnID]bool, len(got))
	for _, id := range got {
		g[id] = true
	}
	w := make(map[core.TxnID]bool, len(want))
	for _, id := range want {
		w[id] = true
	}
	if len(g) != len(got) || len(g) != len(w) {
		t.Errorf("%s: got %v, want %v", what, got, want)
		return
	}
	for id := range w {
		if !g[id] {
			t.Errorf("%s: got %v, want %v", what, got, want)
			return
		}
	}
}

// hasIdem reports whether the store currently holds a completed dedup
// record for key (in the entry map, which mirrors the durable table).
func hasIdem(s *Store, key store.IdempotencyKey) bool {
	s.idemMu.Lock()
	defer s.idemMu.Unlock()
	_, ok := s.idem[key]
	return ok
}

// publishOne edits one insert at p and publishes it directly through st
// (bypassing the Peer wrapper's pending queue), returning the transaction.
func publishOne(t *testing.T, st store.Store, p *store.Peer, val string) *core.Transaction {
	t.Helper()
	x, err := p.Edit(core.Insert("F", core.Strs("rat", val, "v"), p.ID()))
	if err != nil {
		t.Fatal(err)
	}
	batch := []store.PublishedTxn{{Txn: x, Antecedents: p.Engine().LocalAntecedents(x.ID)}}
	if _, err := st.Publish(context.Background(), p.ID(), batch); err != nil {
		t.Fatalf("publish %s: %v", val, err)
	}
	return x
}

// TestReplayedBeginRefusesTrustlessPeer: a deduped BeginReconciliation
// replayed after a store restart must hit the same trust guard as a fresh
// begin — a recovered store knows the peer but not its in-process predicate
// policy, and replaying candidates would otherwise compute priorities
// against a nil policy (formerly a panic). Re-registering the peer makes
// the same replay succeed with the original window.
func TestReplayedBeginRefusesTrustlessPeer(t *testing.T) {
	ctx := context.Background()
	schema := storetest.Schema(t)
	dir := t.TempDir()

	s, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	// pa's policy is an in-process predicate — exactly the kind a store
	// restart cannot restore.
	if _, err := store.NewPeer(ctx, "pa", schema, core.TrustAll(1), s); err != nil {
		t.Fatal(err)
	}
	pb, err := store.NewPeer(ctx, "pb", schema, storetest.TrustAll(1), s)
	if err != nil {
		t.Fatal(err)
	}
	x := publishOne(t, s, pb, "p1")

	kctx := store.WithIdempotencyKey(ctx, "replay/begin/1")
	r1, err := s.BeginReconciliation(kctx, "pa")
	if err != nil {
		t.Fatalf("keyed begin: %v", err)
	}
	if len(r1.Candidates) != 1 {
		t.Fatalf("keyed begin candidates: %+v", candidateIDs(r1))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// The duplicate delivery lands on the recovered store, whose peer row
	// survived but whose predicate trust policy could not. The replay must
	// refuse like a fresh begin would, not panic computing priorities.
	if _, err := s2.BeginReconciliation(kctx, "pa"); err == nil || !strings.Contains(err.Error(), "re-register") {
		t.Fatalf("replayed begin against trustless peer: %v, want re-register error", err)
	}

	// After re-registration the same duplicate replays the original window.
	if err := s2.RegisterPeer(ctx, "pa", storetest.TrustAll(1)); err != nil {
		t.Fatal(err)
	}
	r2, err := s2.BeginReconciliation(kctx, "pa")
	if err != nil {
		t.Fatalf("replayed begin after re-register: %v", err)
	}
	if r2.Recno != r1.Recno || r2.FromEpoch != r1.FromEpoch || r2.ToEpoch != r1.ToEpoch {
		t.Errorf("replayed window differs: %+v vs %+v", r2, r1)
	}
	if ids := candidateIDs(r2); len(ids) != 1 || ids[0] != x.ID {
		t.Errorf("replayed candidates: %v, want [%v]", ids, x.ID)
	}
}

// TestReplayedBeginSurvivesCompaction: compaction may void every epoch of a
// deduped begin's window (the begin itself advanced the peer's frontier
// past it), but the duplicate delivery must still replay the window's
// candidates — they are undecided by the replaying peer, so the snapshot
// residue keeps their payloads indexed. The former epoch-walk replay
// returned an empty candidate list here.
func TestReplayedBeginSurvivesCompaction(t *testing.T) {
	ctx := context.Background()
	schema := storetest.Schema(t)
	s, err := Open(schema, "")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := store.NewPeer(ctx, "pa", schema, storetest.TrustAll(1), s); err != nil {
		t.Fatal(err)
	}
	pb, err := store.NewPeer(ctx, "pb", schema, storetest.TrustAll(1), s)
	if err != nil {
		t.Fatal(err)
	}
	// Two single-txn publishes give the window two epochs, so the replay
	// spans several voided epoch registrations, not just one.
	x1 := publishOne(t, s, pb, "p1")
	x2 := publishOne(t, s, pb, "p2")

	kctx := store.WithIdempotencyKey(ctx, "replay/begin/compacted")
	r1, err := s.BeginReconciliation(kctx, "pa")
	if err != nil {
		t.Fatalf("keyed begin: %v", err)
	}
	wantSameIDs(t, "keyed begin candidates", candidateIDs(r1), x1.ID, x2.ID)

	// Advance pb's frontier too, then snapshot and compact through the
	// whole window. pa has not decided x1/x2, so they sit in the snapshot
	// residue and stay indexed past the compaction.
	if _, err := s.BeginReconciliation(ctx, "pb"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	h := s.CompactionHorizon()
	if h < r1.ToEpoch {
		t.Fatalf("compaction horizon %d does not cover the window through %d", h, r1.ToEpoch)
	}
	if err := s.CompactBefore(ctx, h); err != nil {
		t.Fatal(err)
	}
	if got := s.CompactedBefore(); got < r1.ToEpoch {
		t.Fatalf("compacted through %d, want at least %d — scenario not exercised", got, r1.ToEpoch)
	}

	// The duplicate delivery must replay the identical window and the
	// identical candidates, epochs voided or not.
	r2, err := s.BeginReconciliation(kctx, "pa")
	if err != nil {
		t.Fatalf("replayed begin after compaction: %v", err)
	}
	if r2.Recno != r1.Recno || r2.FromEpoch != r1.FromEpoch || r2.ToEpoch != r1.ToEpoch {
		t.Errorf("replayed window differs: %+v vs %+v", r2, r1)
	}
	wantSameIDs(t, "replayed candidates after compaction", candidateIDs(r2), candidateIDs(r1)...)
	for i, c := range r2.Candidates {
		if want := r1.Candidates[i]; c.Txn.ID != want.Txn.ID || c.Priority != want.Priority {
			t.Errorf("replayed candidate %d: %v prio %d, want %v prio %d", i, c.Txn.ID, c.Priority, want.Txn.ID, want.Priority)
		}
	}
}

// TestCompactionPrunesIdempotencyRecords: CompactBefore must delete every
// dedup record whose epoch watermark lies below the horizon — durable row
// and in-memory entry alike — while records at or above it survive (their
// retries may still be in flight). The pruning must stick across a restart.
func TestCompactionPrunesIdempotencyRecords(t *testing.T) {
	ctx := context.Background()
	schema := storetest.Schema(t)
	dir := t.TempDir()
	s, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := store.NewPeer(ctx, "pa", schema, storetest.TrustAll(1), s)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := store.NewPeer(ctx, "pb", schema, storetest.TrustAll(1), s)
	if err != nil {
		t.Fatal(err)
	}

	// Round one, all keyed: publish at epoch 1, a begin whose window ends
	// there, and a decide observing stable epoch 1. All three watermarks
	// sit at 1.
	x, err := pa.Edit(core.Insert("F", core.Strs("rat", "p1", "v"), "pa"))
	if err != nil {
		t.Fatal(err)
	}
	pubBatch := []store.PublishedTxn{{Txn: x, Antecedents: pa.Engine().LocalAntecedents(x.ID)}}
	if _, err := s.Publish(store.WithIdempotencyKey(ctx, "old/publish"), "pa", pubBatch); err != nil {
		t.Fatal(err)
	}
	rb, err := s.BeginReconciliation(store.WithIdempotencyKey(ctx, "old/begin"), "pb")
	if err != nil {
		t.Fatal(err)
	}
	decide := []store.DecisionBatch{{Peer: "pb", Recno: rb.Recno, Accepted: []core.TxnID{x.ID}}}
	if err := s.RecordDecisionsBatch(store.WithIdempotencyKey(ctx, "old/decide"), decide); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BeginReconciliation(ctx, "pa"); err != nil {
		t.Fatal(err)
	}

	// Round two pushes the stable frontier to epoch 2 and leaves one keyed
	// decide whose watermark is the new frontier.
	y := publishOne(t, s, pb, "p2")
	ra, err := s.BeginReconciliation(ctx, "pa")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.BeginReconciliation(ctx, "pb"); err != nil {
		t.Fatal(err)
	}
	decide2 := []store.DecisionBatch{{Peer: "pa", Recno: ra.Recno, Accepted: []core.TxnID{y.ID}}}
	if err := s.RecordDecisionsBatch(store.WithIdempotencyKey(ctx, "new/decide"), decide2); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	h := s.CompactionHorizon()
	if h < 2 {
		t.Fatalf("compaction horizon %d, want at least 2 — scenario not exercised", h)
	}
	if err := s.CompactBefore(store.WithIdempotencyKey(ctx, "new/compact"), h); err != nil {
		t.Fatal(err)
	}

	old := []store.IdempotencyKey{"old/publish", "old/begin", "old/decide"}
	kept := []store.IdempotencyKey{"new/decide", "new/compact"}
	for _, k := range old {
		if hasIdem(s, k) {
			t.Errorf("dedup record %q survived compaction past its watermark", k)
		}
	}
	for _, k := range kept {
		if !hasIdem(s, k) {
			t.Errorf("dedup record %q at the horizon was pruned", k)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The durable table must agree: pruned rows stay gone after recovery,
	// kept rows reload and still dedupe.
	s2, err := Open(schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, k := range old {
		if hasIdem(s2, k) {
			t.Errorf("pruned dedup row %q reappeared after restart", k)
		}
	}
	for _, k := range kept {
		if !hasIdem(s2, k) {
			t.Errorf("kept dedup row %q lost across restart", k)
		}
	}
	hits := s2.Metrics().Snapshot().DedupHits
	if err := s2.CompactBefore(store.WithIdempotencyKey(ctx, "new/compact"), h); err != nil {
		t.Fatalf("redelivered keyed compact: %v", err)
	}
	if got := s2.Metrics().Snapshot().DedupHits; got != hits+1 {
		t.Errorf("redelivered compact was not a dedup hit: %d hits, want %d", got, hits+1)
	}
}
