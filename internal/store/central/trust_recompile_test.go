package central

import (
	"context"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/trust"
)

// TestTrustRecompileCounter pins the incremental re-evaluation contract at
// the store boundary: a mid-stream re-registration recompiles exactly the
// participants whose delegation closure reaches the changed peer — never
// the whole membership — and the TrustRecompiles counter exposes that.
func TestTrustRecompileCounter(t *testing.T) {
	schema := trustPersistSchema(t)
	ctx := context.Background()
	st, err := Open(schema, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	reg := func(peer, text string) {
		t.Helper()
		if err := st.RegisterPeer(ctx, core.PeerID(peer), trust.MustParse(text)); err != nil {
			t.Fatalf("register %s: %v", peer, err)
		}
	}
	recompiles := func() int64 { return st.Metrics().Snapshot().TrustRecompiles }

	// Chain a --> b --> c plus two peers outside the chain.
	reg("c", "priority 1 when origin = 'pz'")
	reg("b", "priority 1 when origin = 'py'\ndelegate 'c' priority 2")
	reg("a", "priority 1 when origin = 'px'\ndelegate 'b' priority 3")
	reg("iso", "priority 1 when true")
	reg("other", "priority 2 when origin = 'pq'")

	// Changing the chain's leaf recompiles the leaf and both delegators —
	// and nobody else (5 members, delta 3).
	before := recompiles()
	reg("c", "priority 8 when origin = 'pz'")
	if got := recompiles() - before; got != 3 {
		t.Fatalf("leaf re-registration recompiled %d participants, want 3 (a, b, c)", got)
	}

	// Changing an isolated peer recompiles only itself.
	before = recompiles()
	reg("iso", "priority 2 when true")
	if got := recompiles() - before; got != 1 {
		t.Fatalf("isolated re-registration recompiled %d participants, want 1", got)
	}

	// Changing the chain's head recompiles only the head: delegation edges
	// point downstream, so b and c are unaffected.
	before = recompiles()
	reg("a", "priority 6 when origin = 'px'\ndelegate 'b' priority 3")
	if got := recompiles() - before; got != 1 {
		t.Fatalf("head re-registration recompiled %d participants, want 1", got)
	}
}
