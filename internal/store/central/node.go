package central

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"orchestra/internal/core"
	"orchestra/internal/metrics"
	"orchestra/internal/reldb"
	"orchestra/internal/store"
)

// Node hosts many groups' stores inside one shared database. Each group
// lives under its own table-name prefix ("g_<encoded id>_", see
// store.EncodeNamespace), so reldb's per-table locking keeps co-located
// groups fully parallel while their commits batch through the shared WAL's
// group-commit path — the multi-tenant win: one fsync can carry commits
// from many groups.
//
// A Node owns the database; the tenant stores it opens do not (their Close
// detaches watchers and leaves the database alone). Lifecycle:
//
//	node, _ := OpenNode(dir)
//	g, _ := node.OpenGroup("proteomics", schema)   // open or create
//	... use g as an ordinary *Store ...
//	node.CloseGroup("proteomics")                  // quiesce
//	node.DetachGroup("proteomics")                 // drop its tables (migration)
//	node.Close()                                   // closes open groups + database
type Node struct {
	db  *reldb.DB
	cfg config

	mu     sync.Mutex
	groups map[string]*Store
	closed bool
}

// OpenNode creates (or recovers) a multi-group node. dir == "" keeps
// everything in memory (which also disables the WAL, and with it the
// shared group-commit economy — benchmarks measuring commits per flush
// need a disk-backed node). Options apply to every group the node opens;
// database-level options (WithGroupCommit, WithSerialCommit) bind here, at
// database open.
func OpenNode(dir string, opts ...Option) (*Node, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	db, err := reldb.Open(reldb.Options{
		Dir:                  dir,
		GroupCommit:          cfg.groupCommit,
		GroupCommitWindow:    cfg.groupWindow,
		AdaptiveGroupCommit:  cfg.adaptiveCommit,
		GroupCommitMinWindow: cfg.adaptiveMin,
		GroupCommitMaxWindow: cfg.adaptiveMax,
	})
	if err != nil {
		return nil, err
	}
	return &Node{db: db, cfg: cfg, groups: make(map[string]*Store)}, nil
}

// groupNS returns the table-name prefix for a group's tenant store. The
// grammar (store.GroupTablePrefix) is prefix-free across groups, which is
// what lets DetachGroup and the migration copy select a group's tables by
// raw prefix without ever touching a sibling tenant's.
func groupNS(group string) string {
	return store.GroupTablePrefix(group)
}

// OpenGroup opens (or creates) the named group's store over the node's
// shared database. Per-group options override the node's defaults;
// database-level options are ignored here (the database is already open).
// A group may be open at most once — two live stores over the same tables
// would split the epoch allocator's cache — so reopening without an
// intervening CloseGroup is an error.
func (n *Node) OpenGroup(group string, schema *core.Schema, opts ...Option) (*Store, error) {
	cfg := n.cfg
	for _, o := range opts {
		o(&cfg)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, errors.New("central: node is closed")
	}
	if _, open := n.groups[group]; open {
		return nil, fmt.Errorf("central: group %q is already open", group)
	}
	s, err := openOn(n.db, schema, groupNS(group), false, cfg)
	if err != nil {
		return nil, err
	}
	n.groups[group] = s
	return s, nil
}

// CloseGroup closes the named group's store (terminating its watch
// subscriptions); its tables stay in the database for a later OpenGroup.
func (n *Node) CloseGroup(group string) error {
	n.mu.Lock()
	s, open := n.groups[group]
	delete(n.groups, group)
	n.mu.Unlock()
	if !open {
		return fmt.Errorf("central: group %q is not open", group)
	}
	return s.Close()
}

// DetachGroup drops every table of a closed group — the destructive half
// of a migration, run after the group's rows have been copied to its new
// node. The group's epoch sequence is left behind; sequences are monotone
// and a returning migration advances it forward, so a stale value is
// harmless.
func (n *Node) DetachGroup(group string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, open := n.groups[group]; open {
		return fmt.Errorf("central: group %q is still open", group)
	}
	ns := groupNS(group)
	var tables []string
	for _, t := range n.db.TableNames() {
		if strings.HasPrefix(t, ns) {
			tables = append(tables, t)
		}
	}
	if len(tables) == 0 {
		return fmt.Errorf("central: group %q has no tables on this node", group)
	}
	sort.Strings(tables)
	return n.db.Update(func(tx *reldb.Tx) error {
		for _, t := range tables {
			if err := tx.DropTable(t); err != nil {
				return err
			}
		}
		return nil
	})
}

// StoredGroups lists the groups whose tables live in this node's
// database, open or not — recovered from the table names alone, which is
// what makes the namespace codec's reversibility load-bearing.
func (n *Node) StoredGroups() []string {
	var groups []string
	for _, t := range n.db.TableNames() {
		if id, ok := store.GroupFromMetaTable(t); ok {
			groups = append(groups, id)
		}
	}
	sort.Strings(groups)
	return groups
}

// OpenGroups lists the groups currently open on this node.
func (n *Node) OpenGroups() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	groups := make([]string, 0, len(n.groups))
	for g := range n.groups {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	return groups
}

// DB exposes the shared database — the migration path copies a group's
// rows between nodes through it.
func (n *Node) DB() *reldb.DB { return n.db }

// Metrics exposes the shared database's commit and flush counters; the
// commits-per-flush ratio across all tenants is the shared-WAL headline.
func (n *Node) Metrics() *metrics.DBCounters { return n.db.Metrics() }

// Close closes every open group, then the database.
func (n *Node) Close() error {
	n.mu.Lock()
	groups := n.groups
	n.groups = map[string]*Store{}
	closed := n.closed
	n.closed = true
	n.mu.Unlock()
	if closed {
		return nil
	}
	for _, s := range groups {
		s.Close()
	}
	return n.db.Close()
}

// CanMultiGroup implements store.MultiGroupProber: the central store's
// backend family hosts multiple groups (via Node's shared-database
// tenancy).
func (s *Store) CanMultiGroup(context.Context) bool { return true }
