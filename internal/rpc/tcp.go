package rpc

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Wire format (both directions): 4-byte little-endian frame length, then
// the frame. Request frames are gob-encoded wireRequest; response frames
// are gob-encoded wireResponse.

type wireRequest struct {
	From   string
	Method string
	Body   []byte
	// TimeoutNanos is the budget remaining on the caller's context deadline
	// when the request was sent (0 = none); the server applies it as a
	// relative timeout so handlers see (approximately) the deadline the
	// client enforces on the connection. A duration travels instead of the
	// absolute deadline because client and server clocks may disagree — an
	// absolute wall-clock deadline would shift by the skew and a server
	// clock running ahead would expire every handler context on arrival.
	TimeoutNanos int64
}

type wireResponse struct {
	Body []byte
	Err  string
}

const maxFrame = 64 << 20

// Server serves RPC requests over TCP.
type Server struct {
	handler Handler
	ln      net.Listener
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
}

// NewServer returns a server dispatching to h.
func NewServer(h Handler) *Server {
	return &Server{handler: h, conns: make(map[net.Conn]struct{})}
}

// Listen binds the address ("host:port"; ":0" picks a free port) and starts
// serving in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		frame, err := readFrame(br)
		if err != nil {
			return
		}
		var req wireRequest
		if err := Decode(frame, &req); err != nil {
			return
		}
		var resp wireResponse
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if req.TimeoutNanos != 0 {
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutNanos))
		}
		body, herr := s.handler.ServeRPC(ctx, Request{From: req.From, Method: req.Method, Body: req.Body})
		cancel()
		if herr != nil {
			resp.Err = herr.Error()
		} else {
			resp.Body = body
		}
		out, err := Encode(&resp)
		if err != nil {
			return
		}
		if err := writeFrame(bw, out); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Close stops the listener and closes open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a TCP Caller with one pooled connection per remote address.
// Calls on the same connection are serialized; the stores batch work into
// few round trips, so this keeps the implementation simple.
type Client struct {
	// From identifies this client to servers.
	From string
	mu   sync.Mutex
	conn map[string]*clientConn
}

type clientConn struct {
	mu   sync.Mutex
	c    net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	dead bool
}

// NewClient returns a client identifying itself as from.
func NewClient(from string) *Client {
	return &Client{From: from, conn: make(map[string]*clientConn)}
}

// Call implements Caller.
func (cl *Client) Call(ctx context.Context, to, method string, body []byte) ([]byte, error) {
	cc, err := cl.get(ctx, to)
	if err != nil {
		return nil, err
	}
	req := wireRequest{From: cl.From, Method: method, Body: body}
	if dl, ok := ctx.Deadline(); ok {
		// An already-expired deadline still travels (as a minimal budget):
		// the handler should see a done context rather than run unbounded.
		req.TimeoutNanos = max(int64(time.Until(dl)), 1)
	}
	resp, err := cc.roundTrip(ctx, req)
	if err != nil {
		cl.drop(to, cc)
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.Body, nil
}

func (cl *Client) get(ctx context.Context, to string) (*clientConn, error) {
	cl.mu.Lock()
	cc := cl.conn[to]
	cl.mu.Unlock()
	if cc != nil && !cc.dead {
		return cc, nil
	}
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", to)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", to, err)
	}
	cc = &clientConn{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
	cl.mu.Lock()
	cl.conn[to] = cc
	cl.mu.Unlock()
	return cc, nil
}

func (cl *Client) drop(to string, cc *clientConn) {
	cc.dead = true
	cc.c.Close()
	cl.mu.Lock()
	if cl.conn[to] == cc {
		delete(cl.conn, to)
	}
	cl.mu.Unlock()
}

// Close closes all pooled connections.
func (cl *Client) Close() {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, cc := range cl.conn {
		cc.c.Close()
	}
	cl.conn = make(map[string]*clientConn)
}

func (cc *clientConn) roundTrip(ctx context.Context, req wireRequest) (wireResponse, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if dl, ok := ctx.Deadline(); ok {
		cc.c.SetDeadline(dl)
	} else {
		cc.c.SetDeadline(time.Time{})
	}
	frame, err := Encode(&req)
	if err != nil {
		return wireResponse{}, err
	}
	if err := writeFrame(cc.bw, frame); err != nil {
		return wireResponse{}, err
	}
	if err := cc.bw.Flush(); err != nil {
		return wireResponse{}, err
	}
	respFrame, err := readFrame(cc.br)
	if err != nil {
		return wireResponse{}, err
	}
	var resp wireResponse
	if err := Decode(respFrame, &resp); err != nil {
		return wireResponse{}, err
	}
	return resp, nil
}

func writeFrame(w io.Writer, frame []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("rpc: write frame: %w", err)
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("rpc: write frame: %w", err)
	}
	return nil
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}
