package rpc

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func startEcho(t *testing.T) (addr string, srv *Server) {
	t.Helper()
	srv = NewServer(HandlerFunc(func(_ context.Context, req Request) ([]byte, error) {
		return append([]byte(req.From+"/"+req.Method+":"), req.Body...), nil
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, srv
}

func TestTCPRoundTrip(t *testing.T) {
	addr, _ := startEcho(t)
	cl := NewClient("me")
	defer cl.Close()
	resp, err := cl.Call(context.Background(), addr, "hello", []byte("world"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "me/hello:world" {
		t.Errorf("resp = %q", resp)
	}
}

func TestTCPConnectionReuse(t *testing.T) {
	addr, _ := startEcho(t)
	cl := NewClient("me")
	defer cl.Close()
	for i := 0; i < 20; i++ {
		if _, err := cl.Call(context.Background(), addr, "m", nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPHandlerError(t *testing.T) {
	srv := NewServer(HandlerFunc(func(context.Context, Request) ([]byte, error) {
		return nil, context.DeadlineExceeded
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient("me")
	defer cl.Close()
	_, err = cl.Call(context.Background(), addr, "m", nil)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Errorf("err = %v", err)
	}
	// The connection survives handler errors.
	if _, err := cl.Call(context.Background(), addr, "m", nil); err == nil {
		t.Error("second call should also return the handler error")
	}
}

func TestTCPDialFailure(t *testing.T) {
	cl := NewClient("me")
	defer cl.Close()
	if _, err := cl.Call(context.Background(), "127.0.0.1:1", "m", nil); err == nil {
		t.Error("dial to closed port should fail")
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	addr, _ := startEcho(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := NewClient("client")
			defer cl.Close()
			for j := 0; j < 25; j++ {
				if _, err := cl.Call(context.Background(), addr, "m", []byte{byte(id)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestTCPServerClose(t *testing.T) {
	addr, srv := startEcho(t)
	cl := NewClient("me")
	defer cl.Close()
	if _, err := cl.Call(context.Background(), addr, "m", nil); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := cl.Call(ctx, addr, "m", nil); err == nil {
		t.Error("call after server close should fail")
	}
	// Double close is safe.
	if err := srv.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestTCPReconnectAfterDrop(t *testing.T) {
	addr, srv := startEcho(t)
	cl := NewClient("me")
	defer cl.Close()
	if _, err := cl.Call(context.Background(), addr, "m", nil); err != nil {
		t.Fatal(err)
	}
	// Restart the server on the same address.
	srv.Close()
	srv2 := NewServer(HandlerFunc(func(_ context.Context, req Request) ([]byte, error) { return []byte("v2"), nil }))
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	// First call may fail on the stale pooled connection; the retry dials
	// fresh.
	var resp []byte
	var err error
	for i := 0; i < 3; i++ {
		resp, err = cl.Call(context.Background(), addr, "m", nil)
		if err == nil {
			break
		}
	}
	if err != nil || string(resp) != "v2" {
		t.Errorf("after reconnect: %q %v", resp, err)
	}
}

func TestEncodeDecodeErrors(t *testing.T) {
	if err := Decode([]byte("garbage"), &struct{ X int }{}); err == nil {
		t.Error("decoding garbage should fail")
	}
	if _, err := Encode(make(chan int)); err == nil {
		t.Error("encoding a channel should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustEncode should panic on unencodable value")
		}
	}()
	MustEncode(make(chan int))
}
