package rpc

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func startEcho(t *testing.T) (addr string, srv *Server) {
	t.Helper()
	srv = NewServer(HandlerFunc(func(_ context.Context, req Request) ([]byte, error) {
		return append([]byte(req.From+"/"+req.Method+":"), req.Body...), nil
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, srv
}

func TestTCPRoundTrip(t *testing.T) {
	addr, _ := startEcho(t)
	cl := NewClient("me")
	defer cl.Close()
	resp, err := cl.Call(context.Background(), addr, "hello", []byte("world"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "me/hello:world" {
		t.Errorf("resp = %q", resp)
	}
}

func TestTCPConnectionReuse(t *testing.T) {
	addr, _ := startEcho(t)
	cl := NewClient("me")
	defer cl.Close()
	for i := 0; i < 20; i++ {
		if _, err := cl.Call(context.Background(), addr, "m", nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPHandlerError(t *testing.T) {
	srv := NewServer(HandlerFunc(func(context.Context, Request) ([]byte, error) {
		return nil, context.DeadlineExceeded
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient("me")
	defer cl.Close()
	_, err = cl.Call(context.Background(), addr, "m", nil)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Errorf("err = %v", err)
	}
	// The connection survives handler errors.
	if _, err := cl.Call(context.Background(), addr, "m", nil); err == nil {
		t.Error("second call should also return the handler error")
	}
}

func TestTCPDialFailure(t *testing.T) {
	cl := NewClient("me")
	defer cl.Close()
	if _, err := cl.Call(context.Background(), "127.0.0.1:1", "m", nil); err == nil {
		t.Error("dial to closed port should fail")
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	addr, _ := startEcho(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := NewClient("client")
			defer cl.Close()
			for j := 0; j < 25; j++ {
				if _, err := cl.Call(context.Background(), addr, "m", []byte{byte(id)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestTCPServerClose(t *testing.T) {
	addr, srv := startEcho(t)
	cl := NewClient("me")
	defer cl.Close()
	if _, err := cl.Call(context.Background(), addr, "m", nil); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := cl.Call(ctx, addr, "m", nil); err == nil {
		t.Error("call after server close should fail")
	}
	// Double close is safe.
	if err := srv.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestTCPReconnectAfterDrop(t *testing.T) {
	addr, srv := startEcho(t)
	cl := NewClient("me")
	defer cl.Close()
	if _, err := cl.Call(context.Background(), addr, "m", nil); err != nil {
		t.Fatal(err)
	}
	// Restart the server on the same address.
	srv.Close()
	srv2 := NewServer(HandlerFunc(func(_ context.Context, req Request) ([]byte, error) { return []byte("v2"), nil }))
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	// First call may fail on the stale pooled connection; the retry dials
	// fresh.
	var resp []byte
	var err error
	for i := 0; i < 3; i++ {
		resp, err = cl.Call(context.Background(), addr, "m", nil)
		if err == nil {
			break
		}
	}
	if err != nil || string(resp) != "v2" {
		t.Errorf("after reconnect: %q %v", resp, err)
	}
}

func TestEncodeDecodeErrors(t *testing.T) {
	if err := Decode([]byte("garbage"), &struct{ X int }{}); err == nil {
		t.Error("decoding garbage should fail")
	}
	if _, err := Encode(make(chan int)); err == nil {
		t.Error("encoding a channel should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustEncode should panic on unencodable value")
		}
	}()
	MustEncode(make(chan int))
}

// TestTCPServerAppliesTimeoutAsRelativeBudget: the wire carries a remaining
// *duration*, and the server must apply it relative to its own clock. The
// request frame here is hand-rolled with no client clock involved at all —
// a server that still reconstructed an absolute deadline from the field
// would hand the handler a context expired half a century ago.
func TestTCPServerAppliesTimeoutAsRelativeBudget(t *testing.T) {
	const budget = 300 * time.Millisecond
	remaining := make(chan time.Duration, 1)
	srv := NewServer(HandlerFunc(func(ctx context.Context, _ Request) ([]byte, error) {
		dl, ok := ctx.Deadline()
		if !ok {
			remaining <- -1
			return nil, nil
		}
		remaining <- time.Until(dl)
		return nil, nil
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	frame, err := Encode(&wireRequest{From: "raw", Method: "m", TimeoutNanos: int64(budget)})
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(conn)
	if err := writeFrame(bw, frame); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(bufio.NewReader(conn)); err != nil {
		t.Fatal(err)
	}
	rem := <-remaining
	if rem <= 0 || rem > budget {
		t.Errorf("handler saw %v of a %v budget; the timeout was not applied relative to the server clock", rem, budget)
	}
}

// TestTCPClientSendsRemainingBudget: the client must put the *remaining*
// time to its context deadline on the wire, not the absolute wall-clock
// instant — with an hour-long deadline, an absolute UnixNano mistaken for a
// duration would give the handler a deadline decades out.
func TestTCPClientSendsRemainingBudget(t *testing.T) {
	srv := NewServer(HandlerFunc(func(ctx context.Context, _ Request) ([]byte, error) {
		dl, ok := ctx.Deadline()
		if !ok {
			return nil, errors.New("no deadline on handler context")
		}
		return []byte(time.Until(dl).String()), nil
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient("me")
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	resp, err := cl.Call(ctx, addr, "budget", nil)
	if err != nil {
		t.Fatal(err)
	}
	rem, err := time.ParseDuration(string(resp))
	if err != nil {
		t.Fatalf("handler reply %q: %v", resp, err)
	}
	if rem <= 0 || rem > time.Hour {
		t.Errorf("handler saw a %v budget from an hour-long client deadline", rem)
	}
	if rem < 55*time.Minute {
		t.Errorf("handler budget %v lost too much of the client's hour in transit", rem)
	}
}
