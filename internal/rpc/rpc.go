// Package rpc defines the request/response transport abstraction shared by
// the simulated network fabric (internal/simnet) and the TCP transport in
// this package, plus gob codec helpers. The update stores and the DHT are
// written against Caller/Handler and run unchanged over either transport.
package rpc

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
)

// Request is one incoming call.
type Request struct {
	// From is the caller's address.
	From string
	// Method selects the handler behaviour, e.g. "epoch.alloc".
	Method string
	// Body is the gob-encoded argument.
	Body []byte
}

// Handler processes requests at an endpoint. The context carries the
// caller's deadline and cancellation across the transport: the simulated
// fabric passes the caller's context through directly, and the TCP
// transport ships the remaining budget and reapplies it server-side
// (wireRequest.TimeoutNanos), so client/server clock skew never shifts a
// handler's deadline.
type Handler interface {
	ServeRPC(ctx context.Context, req Request) ([]byte, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ctx context.Context, req Request) ([]byte, error)

// ServeRPC implements Handler.
func (f HandlerFunc) ServeRPC(ctx context.Context, req Request) ([]byte, error) {
	return f(ctx, req)
}

// Caller issues requests to remote endpoints.
type Caller interface {
	// Call sends a request to the endpoint at address `to` and waits for
	// its response.
	Call(ctx context.Context, to, method string, body []byte) ([]byte, error)
}

// CallerFunc adapts a function to Caller.
type CallerFunc func(ctx context.Context, to, method string, body []byte) ([]byte, error)

// Call implements Caller.
func (f CallerFunc) Call(ctx context.Context, to, method string, body []byte) ([]byte, error) {
	return f(ctx, to, method, body)
}

// Mux dispatches requests by method name.
type Mux struct {
	handlers map[string]HandlerFunc
}

// NewMux returns an empty mux.
func NewMux() *Mux { return &Mux{handlers: make(map[string]HandlerFunc)} }

// Handle registers a handler for a method; it panics on duplicates (a
// programming error).
func (m *Mux) Handle(method string, h HandlerFunc) {
	if _, dup := m.handlers[method]; dup {
		panic(fmt.Sprintf("rpc: duplicate handler for %s", method))
	}
	m.handlers[method] = h
}

// ServeRPC implements Handler.
func (m *Mux) ServeRPC(ctx context.Context, req Request) ([]byte, error) {
	h, ok := m.handlers[req.Method]
	if !ok {
		return nil, fmt.Errorf("rpc: unknown method %q", req.Method)
	}
	return h(ctx, req)
}

// Encode gob-encodes a value for a request or response body.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("rpc: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// MustEncode is Encode that panics on error; for values whose encodability
// is guaranteed by construction.
func MustEncode(v any) []byte {
	b, err := Encode(v)
	if err != nil {
		panic(err)
	}
	return b
}

// Decode gob-decodes a request or response body into v.
func Decode(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("rpc: decode: %w", err)
	}
	return nil
}

// Invoke encodes args, performs the call, and decodes the reply into reply
// (which may be nil for calls without results).
func Invoke(ctx context.Context, c Caller, to, method string, args, reply any) error {
	var body []byte
	if args != nil {
		var err error
		body, err = Encode(args)
		if err != nil {
			return err
		}
	}
	resp, err := c.Call(ctx, to, method, body)
	if err != nil {
		return err
	}
	if reply == nil {
		return nil
	}
	return Decode(resp, reply)
}
