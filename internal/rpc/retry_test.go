package rpc

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"orchestra/internal/metrics"
)

var errFlaky = errors.New("flaky: lost message")

// flakyCaller fails the first n calls with errFlaky, then succeeds. It
// records the bodies it saw so tests can pin body reuse across attempts.
type flakyCaller struct {
	mu     sync.Mutex
	failN  int
	calls  int
	bodies [][]byte
	perm   error // returned instead of errFlaky when set
}

func (f *flakyCaller) Call(_ context.Context, to, method string, body []byte) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	f.bodies = append(f.bodies, body)
	if f.calls <= f.failN {
		if f.perm != nil {
			return nil, f.perm
		}
		return nil, errFlaky
	}
	return []byte("ok"), nil
}

func transientOnly(err error) bool { return errors.Is(err, errFlaky) }

func fastPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
		Classify:    transientOnly,
	}
}

func TestRetryEventualSuccess(t *testing.T) {
	f := &flakyCaller{failN: 2}
	var rc metrics.RetryCounters
	p := fastPolicy()
	p.Counters = &rc
	c := WithRetry(f, p)
	resp, err := c.Call(context.Background(), "srv", "m", []byte("payload"))
	if err != nil || string(resp) != "ok" {
		t.Fatalf("call: %v %q", err, resp)
	}
	if f.calls != 3 {
		t.Errorf("attempts = %d, want 3", f.calls)
	}
	// The request body must be reused verbatim so idempotency keys encoded
	// in it stay constant across attempts.
	for i, b := range f.bodies {
		if string(b) != "payload" {
			t.Errorf("attempt %d body = %q", i, b)
		}
	}
	snap := rc.Snapshot()
	if snap.Calls != 1 || snap.Attempts != 3 || snap.Retries != 2 {
		t.Errorf("counters = %+v", snap)
	}
	if snap.Exhausted != 0 || snap.Permanent != 0 {
		t.Errorf("unexpected terminal counters: %+v", snap)
	}
}

func TestRetryPermanentErrorNotRetried(t *testing.T) {
	perm := errors.New("store: unknown peer")
	f := &flakyCaller{failN: 99, perm: perm}
	var rc metrics.RetryCounters
	p := fastPolicy()
	p.Counters = &rc
	c := WithRetry(f, p)
	_, err := c.Call(context.Background(), "srv", "m", nil)
	if !errors.Is(err, perm) {
		t.Fatalf("err = %v", err)
	}
	if f.calls != 1 {
		t.Errorf("permanent error retried: %d attempts", f.calls)
	}
	if snap := rc.Snapshot(); snap.Permanent != 1 || snap.Retries != 0 {
		t.Errorf("counters = %+v", snap)
	}
}

func TestRetryExhaustion(t *testing.T) {
	f := &flakyCaller{failN: 99}
	var rc metrics.RetryCounters
	p := fastPolicy()
	p.Counters = &rc
	c := WithRetry(f, p)
	_, err := c.Call(context.Background(), "srv", "m", nil)
	if !errors.Is(err, errFlaky) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "after 4 attempts") {
		t.Errorf("exhaustion error lacks attempt count: %v", err)
	}
	if f.calls != 4 {
		t.Errorf("attempts = %d, want MaxAttempts=4", f.calls)
	}
	if snap := rc.Snapshot(); snap.Exhausted != 1 {
		t.Errorf("counters = %+v", snap)
	}
}

func TestRetryNilClassifyNeverRetries(t *testing.T) {
	f := &flakyCaller{failN: 99}
	p := fastPolicy()
	p.Classify = nil
	c := WithRetry(f, p)
	if _, err := c.Call(context.Background(), "srv", "m", nil); !errors.Is(err, errFlaky) {
		t.Fatalf("err = %v", err)
	}
	if f.calls != 1 {
		t.Errorf("nil Classify retried: %d attempts", f.calls)
	}
}

func TestRetryHonorsCallerContext(t *testing.T) {
	f := &flakyCaller{failN: 99}
	p := fastPolicy()
	p.BaseDelay = time.Hour // the backoff sleep must not block cancellation
	c := WithRetry(f, p)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(ctx, "srv", "m", nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not interrupt the backoff sleep")
	}
	if f.calls != 1 {
		t.Errorf("attempts after cancel = %d", f.calls)
	}
}

func TestRetryBackoffGrowsAndCaps(t *testing.T) {
	// With jitter disabled the schedule is exact: 1ms, 2ms, 4ms, then
	// capped 5ms.
	var rc metrics.RetryCounters
	p := RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Multiplier:  2,
		Jitter:      -1, // zero would mean "default 0.2"
		Classify:    transientOnly,
		Counters:    &rc,
	}
	f := &flakyCaller{failN: 99}
	c := WithRetry(f, p)
	if _, err := c.Call(context.Background(), "srv", "m", nil); err == nil {
		t.Fatal("expected exhaustion")
	}
	want := 1 + 2 + 4 + 5 // ms of backoff across the 4 retries
	if got := rc.Snapshot().Backoff; got != time.Duration(want)*time.Millisecond {
		t.Errorf("total backoff = %v, want %dms", got, want)
	}
}

func TestRetryJitterOnlyShavesDown(t *testing.T) {
	r := WithRetry(nil, RetryPolicy{Jitter: 0.5, Seed: 1}).(*retrier)
	base := 100 * time.Millisecond
	for i := 0; i < 100; i++ {
		d := r.jittered(base)
		if d > base || d < base/2 {
			t.Fatalf("jittered(%v) = %v outside [50ms, 100ms]", base, d)
		}
	}
}

func TestRetryPerAttemptTimeout(t *testing.T) {
	// A caller that honors its context deadline but would otherwise hang:
	// per-attempt CallTimeout must bound each try, and with Classify
	// accepting the deadline error the call retries until exhaustion.
	slow := CallerFunc(func(ctx context.Context, to, method string, body []byte) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	p := RetryPolicy{
		MaxAttempts: 2,
		BaseDelay:   time.Microsecond,
		CallTimeout: 5 * time.Millisecond,
		Classify:    func(err error) bool { return errors.Is(err, context.DeadlineExceeded) },
	}
	c := WithRetry(slow, p)
	start := time.Now()
	_, err := c.Call(context.Background(), "srv", "m", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("per-attempt timeout did not bound the call: %v", elapsed)
	}
}

// TestDefaultSeedDesynchronizesRetriers: two retriers built with the
// default (zero) Seed must not share a jitter sequence — clients that fail
// together would otherwise back off in lockstep and collide again on every
// retry wave.
func TestDefaultSeedDesynchronizesRetriers(t *testing.T) {
	a := WithRetry(nil, RetryPolicy{}).(*retrier)
	b := WithRetry(nil, RetryPolicy{}).(*retrier)
	same := true
	for i := 0; i < 16; i++ {
		if a.jittered(time.Second) != b.jittered(time.Second) {
			same = false
		}
	}
	if same {
		t.Error("two default-policy retriers produced identical jitter sequences")
	}
}

// TestExplicitSeedPinsJitter: a nonzero Seed stays deterministic, so tests
// that pin backoff schedules keep working.
func TestExplicitSeedPinsJitter(t *testing.T) {
	a := WithRetry(nil, RetryPolicy{Seed: 42}).(*retrier)
	b := WithRetry(nil, RetryPolicy{Seed: 42}).(*retrier)
	for i := 0; i < 16; i++ {
		if da, db := a.jittered(time.Second), b.jittered(time.Second); da != db {
			t.Fatalf("draw %d: identical seeds diverged (%v vs %v)", i, da, db)
		}
	}
}
