package rpc

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"orchestra/internal/metrics"
)

// RetryPolicy configures WithRetry: per-attempt deadlines, a transient
// error classifier, and capped exponential backoff with jitter.
//
// Retrying is only safe when the wrapped call is idempotent or
// idempotency-keyed: a transient failure (a timeout, a lost reply) does not
// say whether the remote side ran the handler. The store clients attach
// idempotency keys to their non-idempotent operations before wrapping their
// transport with WithRetry, so a retried delivery dedupes server-side.
type RetryPolicy struct {
	// MaxAttempts bounds the total attempts per call, including the first
	// (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 5ms); each
	// further retry multiplies it by Multiplier (default 2), capped at
	// MaxDelay (default 1s).
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter randomizes each backoff down by up to this fraction (default
	// 0.2), de-synchronizing clients that fail together. Negative disables
	// jitter entirely, for tests that pin exact backoff schedules.
	Jitter float64
	// CallTimeout bounds each attempt with its own deadline (0 = only the
	// caller's context bounds the attempt). The caller's context still
	// bounds the whole call including backoff sleeps.
	CallTimeout time.Duration
	// Classify reports whether an error is transient and worth retrying.
	// nil retries nothing (every error is permanent); store clients use
	// store.IsTransient.
	Classify func(error) bool
	// Counters, when set, receives attempt/retry/backoff observations.
	Counters *metrics.RetryCounters
	// Seed fixes the jitter randomness; tests use it to pin backoff
	// schedules. 0 (the default) draws a fresh random seed per retrier, so
	// clients that fail together jitter apart instead of backing off in
	// lockstep.
	Seed int64
}

// withDefaults fills unset fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
	return p
}

// retrier wraps a Caller with RetryPolicy.
type retrier struct {
	next Caller
	p    RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

// WithRetry wraps the caller so each Call retries transient failures (per
// p.Classify) with capped exponential backoff. The request body is reused
// verbatim across attempts, so an idempotency key encoded in it stays
// constant — exactly what server-side dedup needs.
func WithRetry(c Caller, p RetryPolicy) Caller {
	p = p.withDefaults()
	seed := p.Seed
	if seed == 0 {
		seed = randomSeed()
	}
	return &retrier{next: c, p: p, rng: rand.New(rand.NewSource(seed))}
}

// randomSeed draws a per-retrier jitter seed, so retriers built with the
// default policy never share a backoff schedule.
func randomSeed() int64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// Entropy exhaustion is not worth failing a retry policy over; the
		// clock still de-synchronizes retriers created at different times.
		return time.Now().UnixNano()
	}
	return int64(binary.LittleEndian.Uint64(b[:]))
}

func (r *retrier) Call(ctx context.Context, to, method string, body []byte) ([]byte, error) {
	r.p.Counters.ObserveCall()
	delay := r.p.BaseDelay
	for attempt := 1; ; attempt++ {
		r.p.Counters.ObserveAttempt()
		actx, cancel := ctx, context.CancelFunc(nil)
		if r.p.CallTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, r.p.CallTimeout)
		}
		resp, err := r.next.Call(actx, to, method, body)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return resp, nil
		}
		if ctx.Err() != nil {
			// The caller's own context is done; the error is final however
			// it classifies.
			return nil, err
		}
		if r.p.Classify == nil || !r.p.Classify(err) {
			r.p.Counters.ObservePermanent()
			return nil, err
		}
		if attempt >= r.p.MaxAttempts {
			r.p.Counters.ObserveExhausted()
			return nil, fmt.Errorf("rpc: %s %s failed after %d attempts: %w", to, method, attempt, err)
		}
		d := r.jittered(delay)
		r.p.Counters.ObserveRetry(d)
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, fmt.Errorf("rpc: %s %s: %w (last attempt: %w)", to, method, ctx.Err(), err)
		}
		delay = time.Duration(float64(delay) * r.p.Multiplier)
		if delay > r.p.MaxDelay {
			delay = r.p.MaxDelay
		}
	}
}

// jittered shaves up to p.Jitter of the delay off, using the policy's
// seeded generator.
func (r *retrier) jittered(d time.Duration) time.Duration {
	if r.p.Jitter <= 0 || d <= 0 {
		return d
	}
	r.mu.Lock()
	f := r.rng.Float64()
	r.mu.Unlock()
	return d - time.Duration(f*r.p.Jitter*float64(d))
}
