package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// frame encodes one valid WAL record frame, for seed corpus entries.
func frame(payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	return append(hdr[:], payload...)
}

// FuzzWALReplay hands the record reader an arbitrary segment file —
// including random mutations of valid frames, via the seed corpus. Open
// must never panic: it truncates the file to its longest valid record
// prefix. Every replayed record must be an intact payload that was fully
// framed in the input, replay must agree with what a reopen sees, and the
// log must remain writable after recovery (the crash-test invariant: a
// torn or corrupt tail never wedges the log).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(frame([]byte("hello")))
	f.Add(append(frame([]byte("a")), frame(bytes.Repeat([]byte{0xee}, 300))...))
	f.Add(append(frame([]byte("committed")), 0xde, 0xad, 0xbe)) // torn tail
	corrupt := frame([]byte("zzzz"))
	corrupt[9] ^= 0xff // flip a payload byte: CRC mismatch
	f.Add(corrupt)
	// Each exec opens, appends, fsyncs, and reopens a real log; on-disk
	// temp dirs make that fsync-bound (~1 exec/s). Prefer tmpfs scratch
	// space so the fuzzer actually explores.
	scratch := "/dev/shm"
	if st, err := os.Stat(scratch); err != nil || !st.IsDir() {
		scratch = ""
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir, err := os.MkdirTemp(scratch, "walfuzz")
		if err != nil {
			t.Fatal(err)
		}
		defer os.RemoveAll(dir)
		if err := os.WriteFile(filepath.Join(dir, "00000000.wal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on fuzzed segment: %v", err)
		}
		var replayed [][]byte
		if err := l.Replay(func(p []byte) error {
			replayed = append(replayed, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("Replay: %v", err)
		}
		// Open truncated to the valid prefix; the surviving bytes must be
		// exactly the frames Replay reported.
		kept, err := os.ReadFile(filepath.Join(dir, "00000000.wal"))
		if err != nil {
			t.Fatal(err)
		}
		var rebuilt []byte
		for _, p := range replayed {
			rebuilt = append(rebuilt, frame(p)...)
		}
		if !bytes.Equal(kept, rebuilt) {
			t.Fatalf("truncated segment (%d bytes) != replayed frames (%d bytes)", len(kept), len(rebuilt))
		}
		if !bytes.HasPrefix(data, kept) {
			t.Fatalf("recovered prefix is not a prefix of the original input")
		}
		// The log stays writable: a fresh append must survive a reopen,
		// after all prior records.
		sentinel := []byte("post-recovery append")
		if err := l.Append(sentinel); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		var after [][]byte
		if err := l2.Replay(func(p []byte) error {
			after = append(after, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(after) != len(replayed)+1 {
			t.Fatalf("after append: %d records, want %d", len(after), len(replayed)+1)
		}
		for i, p := range replayed {
			if !bytes.Equal(after[i], p) {
				t.Fatalf("record %d changed across recovery", i)
			}
		}
		if !bytes.Equal(after[len(after)-1], sentinel) {
			t.Fatalf("sentinel not replayed")
		}
	})
}
