package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTemp(t *testing.T, opts Options) (*Log, string) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, dir
}

func replayAll(t *testing.T, l *Log) []string {
	t.Helper()
	var out []string
	if err := l.Replay(func(p []byte) error {
		out = append(out, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplay(t *testing.T) {
	l, _ := openTemp(t, Options{})
	defer l.Close()
	for i := 0; i < 100; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := replayAll(t, l)
	if len(got) != 100 || got[0] != "record-000" || got[99] != "record-099" {
		t.Fatalf("replay got %d records, first %q last %q", len(got), got[0], got[len(got)-1])
	}
}

func TestReopenPreservesRecords(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("after-reopen")); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l)
	if len(got) != 11 || got[10] != "after-reopen" {
		t.Fatalf("replay after reopen: %v", got)
	}
}

func TestSegmentRotation(t *testing.T) {
	l, dir := openTemp(t, Options{SegmentSize: 64})
	defer l.Close()
	payload := make([]byte, 40)
	for i := 0; i < 10; i++ {
		payload[0] = byte(i)
		if err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(ents))
	}
	got := replayAll(t, l)
	if len(got) != 10 {
		t.Fatalf("replay across segments: %d records", len(got))
	}
	for i, r := range got {
		if r[0] != byte(i) {
			t.Fatalf("record %d out of order", i)
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("ok-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: write a torn record (header claims more
	// bytes than present).
	path := filepath.Join(dir, "00000000.wal")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 0, 0, 0, 1, 2, 3, 4, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := replayAll(t, l)
	if len(got) != 5 {
		t.Fatalf("torn tail not truncated: %v", got)
	}
	// Appends after recovery land cleanly.
	if err := l.Append([]byte("recovered")); err != nil {
		t.Fatal(err)
	}
	got = replayAll(t, l)
	if len(got) != 6 || got[5] != "recovered" {
		t.Fatalf("append after recovery: %v", got)
	}
}

func TestCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("willcorrupt")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Flip a payload byte of the second record.
	path := filepath.Join(dir, "00000000.wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := replayAll(t, l)
	if len(got) != 1 || got[0] != "good" {
		t.Fatalf("corrupt record should stop replay: %v", got)
	}
}

func TestReset(t *testing.T) {
	l, _ := openTemp(t, Options{SegmentSize: 64})
	defer l.Close()
	for i := 0; i < 10; i++ {
		if err := l.Append(make([]byte, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l); len(got) != 0 {
		t.Fatalf("records after reset: %v", got)
	}
	if err := l.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l); len(got) != 1 {
		t.Fatalf("append after reset: %v", got)
	}
	sz, err := l.Size()
	if err != nil || sz == 0 {
		t.Errorf("Size = %d, %v", sz, err)
	}
}

func TestSyncAndSyncOnAppend(t *testing.T) {
	l, _ := openTemp(t, Options{SyncOnAppend: true})
	if err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()
}

func TestClosedOperationsFail(t *testing.T) {
	l, _ := openTemp(t, Options{})
	l.Close()
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Errorf("Append after close: %v", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Errorf("Sync after close: %v", err)
	}
	if err := l.Replay(func([]byte) error { return nil }); err != ErrClosed {
		t.Errorf("Replay after close: %v", err)
	}
	if err := l.Reset(); err != ErrClosed {
		t.Errorf("Reset after close: %v", err)
	}
	if _, err := l.Size(); err != ErrClosed {
		t.Errorf("Size after close: %v", err)
	}
	if err := l.Close(); err != ErrClosed {
		t.Errorf("double Close: %v", err)
	}
}

func TestReplayCallbackError(t *testing.T) {
	l, _ := openTemp(t, Options{})
	defer l.Close()
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	wantErr := fmt.Errorf("stop")
	n := 0
	err := l.Replay(func([]byte) error {
		n++
		if n == 2 {
			return wantErr
		}
		return nil
	})
	if err != wantErr || n != 2 {
		t.Errorf("err=%v n=%d", err, n)
	}
}

func TestEmptyPayload(t *testing.T) {
	l, _ := openTemp(t, Options{})
	defer l.Close()
	if err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l)
	if len(got) != 1 || got[0] != "" {
		t.Fatalf("empty payload: %v", got)
	}
}
