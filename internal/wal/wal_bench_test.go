package wal

import "testing"

func BenchmarkAppend(b *testing.B) {
	for _, size := range []int{64, 1024} {
		b.Run(byteSize(size), func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAppendSync(b *testing.B) {
	l, err := Open(b.TempDir(), Options{SyncOnAppend: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplay(b *testing.B) {
	l, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 128)
	const records = 10_000
	for i := 0; i < records; i++ {
		if err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := l.Replay(func([]byte) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("replayed %d", n)
		}
	}
}

func byteSize(n int) string {
	switch {
	case n >= 1024:
		return "1KiB"
	default:
		return "64B"
	}
}
