// Package wal implements a segmented, CRC-checked, append-only write-ahead
// log used by the reldb relational engine for durability: every committed
// transaction is framed and appended; on open, the log is replayed and any
// torn tail (from a crash mid-append or mid-flush) is truncated.
//
// Record framing: 4-byte little-endian payload length, 4-byte CRC-32
// (Castagnoli) of the payload, payload bytes. Records never straddle
// segment files; a segment whose size reaches the rotation threshold is
// synced, closed, and succeeded by the next-numbered segment.
//
// Two append paths exist. Append frames one record. AppendBatch frames a
// whole group of records and writes them with a single Write call (and at
// most one fsync when SyncOnAppend is set) — the primitive behind reldb's
// group commit, where concurrent committers share one flush. Either way a
// record is atomic on recovery: replay stops at the first record whose
// frame is torn or whose checksum fails, so a crash mid-flush drops the
// uncommitted tail and nothing else.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	headerSize = 8
	// DefaultSegmentSize is the rotation threshold for segment files.
	DefaultSegmentSize = 4 << 20
	segSuffix          = ".wal"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Log is a segmented append-only log. It is safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	dir     string
	segSize int64
	closed  bool

	seg     *os.File // active segment
	segIdx  int      // index of the active segment
	segOff  int64    // size of the active segment
	syncAll bool     // fsync on every append
}

// Options configure a Log.
type Options struct {
	// SegmentSize is the rotation threshold; DefaultSegmentSize if zero.
	SegmentSize int64
	// SyncOnAppend fsyncs after every append. Slower but loses nothing on
	// a crash. Without it, Sync must be called at commit points.
	SyncOnAppend bool
}

// Open opens (or creates) the log in dir, replaying existing segments to
// find the tail and truncating any torn final record.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, segSize: opts.SegmentSize, syncAll: opts.SyncOnAppend}
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.openSegment(0, 0); err != nil {
			return nil, err
		}
		return l, nil
	}
	last := segs[len(segs)-1]
	valid, err := validLength(l.segPath(last))
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(l.segPath(last), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.seg, l.segIdx, l.segOff = f, last, valid
	return l, nil
}

// segPath returns the path of segment i.
func (l *Log) segPath(i int) string {
	return filepath.Join(l.dir, fmt.Sprintf("%08d%s", i, segSuffix))
}

// segments lists existing segment indexes in order.
func (l *Log) segments() ([]int, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []int
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, segSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(name, segSuffix))
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// openSegment creates and activates segment idx.
func (l *Log) openSegment(idx int, off int64) error {
	f, err := os.OpenFile(l.segPath(idx), os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.seg, l.segIdx, l.segOff = f, idx, off
	return nil
}

// validLength scans a segment and returns the byte length of its valid
// prefix (stopping at the first torn or corrupt record).
func validLength(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var off int64
	hdr := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return off, nil // clean EOF or torn header: stop here
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return off, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return off, nil // corrupt
		}
		off += headerSize + int64(n)
	}
}

// Append frames and appends one record: AppendBatch with a single-record
// group. It returns after the record is buffered in the OS (or fsynced
// when SyncOnAppend is set).
func (l *Log) Append(payload []byte) error {
	return l.AppendBatch([][]byte{payload})
}

// AppendBatch frames and appends a group of records with one Write call
// and, when SyncOnAppend is set, a single fsync — the group-commit flush
// path. The records land in slice order; recovery sees an all-or-nothing
// of the group: rotation happens before the batch (never inside it, so a
// segment may overshoot the threshold by one group, exactly as a single
// oversized Append overshoots it), the whole group goes down in one
// write, and a failed or partial write is truncated away so no prefix of
// a failed group survives to replay.
func (l *Log) AppendBatch(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.segOff >= l.segSize {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	total := 0
	for _, p := range payloads {
		total += headerSize + len(p)
	}
	buf := make([]byte, 0, total)
	for _, p := range payloads {
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(p, castagnoli))
		buf = append(buf, hdr[:]...)
		buf = append(buf, p...)
	}
	if _, err := l.seg.Write(buf); err != nil {
		// A short write would otherwise leave a durable prefix of a group
		// whose committers were all told it failed; drop it.
		if terr := l.seg.Truncate(l.segOff); terr == nil {
			l.seg.Seek(l.segOff, io.SeekStart)
		}
		return fmt.Errorf("wal: append batch: %w", err)
	}
	l.segOff += int64(len(buf))
	if l.syncAll {
		if err := l.seg.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	return nil
}

func (l *Log) rotateLocked() error {
	if err := l.seg.Sync(); err != nil {
		return fmt.Errorf("wal: sync before rotate: %w", err)
	}
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	return l.openSegment(l.segIdx+1, 0)
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.seg.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Replay invokes fn for every valid record across all segments, in append
// order. It is typically called once after Open, before new appends.
func (l *Log) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	segs, err := l.segments()
	if err != nil {
		return err
	}
	hdr := make([]byte, headerSize)
	for _, idx := range segs {
		f, err := os.Open(l.segPath(idx))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		for {
			if _, err := io.ReadFull(f, hdr); err != nil {
				break
			}
			n := binary.LittleEndian.Uint32(hdr[0:4])
			crc := binary.LittleEndian.Uint32(hdr[4:8])
			payload := make([]byte, n)
			if _, err := io.ReadFull(f, payload); err != nil {
				break
			}
			if crc32.Checksum(payload, castagnoli) != crc {
				break
			}
			if err := fn(payload); err != nil {
				f.Close()
				return err
			}
		}
		f.Close()
	}
	return nil
}

// Reset removes all records: used after a checkpoint has captured the state
// elsewhere. The log remains open for appends.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	segs, err := l.segments()
	if err != nil {
		return err
	}
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, idx := range segs {
		if err := os.Remove(l.segPath(idx)); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	return l.openSegment(0, 0)
}

// Size returns the total byte size of all segments.
func (l *Log) Size() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	segs, err := l.segments()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, idx := range segs {
		fi, err := os.Stat(l.segPath(idx))
		if err != nil {
			return 0, fmt.Errorf("wal: %w", err)
		}
		total += fi.Size()
	}
	return total, nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.closed = true
	if err := l.seg.Sync(); err != nil {
		l.seg.Close()
		return fmt.Errorf("wal: %w", err)
	}
	return l.seg.Close()
}
