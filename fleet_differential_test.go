package orchestra

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/store"
	"orchestra/internal/store/central"
)

// The cross-tenant differential. M groups run the identical streaming
// workload (system_streaming_test.go) through one Fleet — co-located
// tenants in shared databases, commits batching through shared WALs — and
// every group must produce a fingerprint bit-identical to the same
// workload run standalone against a private store: same per-peer decision
// windows, same instances, same engine decision sets. Exercised across
// fleet sizes (1, 2, 4 stores) and both drive modes (round-based barriers
// and per-peer reconcile streams). Run with -race: the streaming legs
// overlap M groups' publishes, watch deliveries, and decision flushes in
// the same databases.

// streamGroupPeers is the streaming trust matrix (addStreamPeers) in the
// textual policy language — fleet groups require textual trust, and the
// standalone reference uses the same policies so the comparison is exact.
func streamGroupPeers() []GroupPeer {
	trust := map[PeerID]map[PeerID]int{
		"pa": {"pb": 1, "pc": 1, "pd": 1},
		"pb": {"pa": 2, "pc": 1, "pd": 1},
		"pc": {"pb": 1, "pd": 1}, // pa untrusted: enables the conflicting K re-insert
		"pd": {"pa": 1, "pb": 1, "pc": 1},
	}
	out := make([]GroupPeer, 0, len(streamPeerOrder))
	for _, id := range streamPeerOrder {
		origins := make([]string, 0, len(trust[id]))
		for o := range trust[id] {
			origins = append(origins, string(o))
		}
		sort.Strings(origins)
		pol := NewTrustPolicy()
		for _, o := range origins {
			pol.MustAdd(trust[id][PeerID(o)], fmt.Sprintf("origin = '%s'", o))
		}
		out = append(out, GroupPeer{ID: id, Trust: pol})
	}
	return out
}

// groupRun is one group's workload state in a lockstep drive: its system,
// peers, published universe, and observed decision windows. The mutex
// guards the observer-written fields during streaming.
type groupRun struct {
	sys      *System
	peers    map[PeerID]*Peer
	universe []TxnID

	mu       sync.Mutex
	outcomes map[PeerID][]roundOutcome
	steps    map[PeerID]int
	frontier map[PeerID]Epoch
}

func newGroupRun() *groupRun {
	return &groupRun{
		peers:    make(map[PeerID]*Peer),
		outcomes: make(map[PeerID][]roundOutcome),
		steps:    make(map[PeerID]int),
		frontier: make(map[PeerID]Epoch),
	}
}

func (r *groupRun) edit(t *testing.T) func(*Peer, Update) *Transaction {
	return func(p *Peer, u Update) *Transaction {
		x, err := p.Edit(u)
		if err != nil {
			t.Fatalf("edit at %s: %v", p.ID(), err)
		}
		r.universe = append(r.universe, x.ID)
		return x
	}
}

// observe is the group's stream observer (registered per group through
// GroupSpec.SystemOptions); called from the group's stream goroutines.
func (r *groupRun) observe(sr store.StreamResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.steps[sr.Peer]++
	if sr.To > r.frontier[sr.Peer] {
		r.frontier[sr.Peer] = sr.To
	}
	recordOutcome(r.outcomes, sr.Peer, sr.Result)
}

func (r *groupRun) fingerprint() streamScenarioResult {
	return streamFingerprint(r.peers, r.universe, r.outcomes)
}

// driveRoundLockstep runs the streaming workload round-based over every
// group in lockstep: all groups publish a round before any reconciles it,
// so co-located tenants' commits overlap in their shared database.
func driveRoundLockstep(t *testing.T, runs []*groupRun) {
	t.Helper()
	ctx := t.Context()
	for _, r := range runs {
		phase0(t, ctx, r.sys, r.peers, r.edit(t), r.outcomes)
	}
	// Alignment reconcile (the analogue of the streams' catch-up step).
	for _, r := range runs {
		for _, id := range streamPeerOrder {
			res, err := r.peers[id].Reconcile(ctx)
			if err != nil {
				t.Fatal(err)
			}
			recordOutcome(r.outcomes, id, res)
		}
	}
	for _, round := range streamingRounds() {
		for _, r := range runs {
			edit := r.edit(t)
			for _, u := range round.edits {
				edit(r.peers[round.pub], u)
			}
			if _, err := r.peers[round.pub].Publish(ctx); err != nil {
				t.Fatal(err)
			}
		}
		for _, r := range runs {
			for _, id := range streamPeerOrder {
				res, err := r.peers[id].Reconcile(ctx)
				if err != nil {
					t.Fatal(err)
				}
				recordOutcome(r.outcomes, id, res)
			}
		}
	}
}

// driveStreamingLockstep runs the workload with every group's reconcile
// streams live at once: the driver only edits and publishes, and the round
// barrier is "every stream frontier in the group has passed the round's
// epoch" — per group, so groups progress independently within a round.
func driveStreamingLockstep(t *testing.T, runs []*groupRun) {
	t.Helper()
	ctx := t.Context()
	for _, r := range runs {
		r.mu.Lock()
		phase0(t, ctx, r.sys, r.peers, r.edit(t), r.outcomes)
		r.mu.Unlock()
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan error, len(runs))
	for _, r := range runs {
		go func(r *groupRun) { done <- r.sys.RunStreaming(sctx) }(r)
	}
	for j, r := range runs {
		waitStream(t, &r.mu, fmt.Sprintf("group %d catch-up step on every peer", j), func() bool {
			for _, id := range streamPeerOrder {
				if r.steps[id] < 1 {
					return false
				}
			}
			return true
		})
	}
	for i, round := range streamingRounds() {
		epochs := make([]Epoch, len(runs))
		for j, r := range runs {
			edit := r.edit(t)
			for _, u := range round.edits {
				edit(r.peers[round.pub], u)
			}
			epoch, err := r.peers[round.pub].Publish(ctx)
			if err != nil {
				t.Fatal(err)
			}
			epochs[j] = epoch
		}
		for j, r := range runs {
			r := r
			waitStream(t, &r.mu, fmt.Sprintf("group %d round %d frontier %d", j, i, epochs[j]), func() bool {
				for _, id := range streamPeerOrder {
					if r.frontier[id] < epochs[j] {
						return false
					}
				}
				return true
			})
		}
	}
	cancel()
	for range runs {
		if err := <-done; err != nil {
			t.Fatalf("RunStreaming: %v", err)
		}
	}
}

// standaloneReference runs the workload once against a private store —
// what each fleet group must be indistinguishable from.
func standaloneReference(t *testing.T) streamScenarioResult {
	t.Helper()
	cs, err := central.Open(streamSchema(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	sys, err := NewSystem(streamSchema(),
		WithPeerStores(func(core.PeerID) (store.Store, error) { return cs, nil }))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	r := newGroupRun()
	r.sys = sys
	for _, gp := range streamGroupPeers() {
		p, err := sys.AddPeer(gp.ID, gp.Trust)
		if err != nil {
			t.Fatal(err)
		}
		r.peers[gp.ID] = p
	}
	driveRoundLockstep(t, []*groupRun{r})
	return r.fingerprint()
}

// buildFleetRuns builds a durable fleet of the given size hosting `groups`
// copies of the workload confederation.
func buildFleetRuns(t *testing.T, stores, groups int, streaming bool) []*groupRun {
	t.Helper()
	base := t.TempDir()
	f := NewFleet(WithStoreDirs(func(name string) string { return filepath.Join(base, name) }))
	t.Cleanup(func() { f.Close() })
	for i := 0; i < stores; i++ {
		if err := f.AddStore(fmt.Sprintf("s%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	runs := make([]*groupRun, 0, groups)
	for i := 0; i < groups; i++ {
		r := newGroupRun()
		spec := GroupSpec{
			ID:     fmt.Sprintf("g%d", i),
			Schema: streamSchema(),
			Peers:  streamGroupPeers(),
		}
		if streaming {
			spec.SystemOptions = []SystemOption{
				WithStreamObserver(r.observe),
				WithStreamPoll(2 * time.Millisecond),
				WithStreamRetry(time.Millisecond, 20*time.Millisecond),
			}
		}
		g, err := f.AddGroup(spec)
		if err != nil {
			t.Fatal(err)
		}
		r.sys = g.System()
		for _, id := range streamPeerOrder {
			p, ok := r.sys.Peer(id)
			if !ok {
				t.Fatalf("group %s: peer %s not registered", g.ID(), id)
			}
			r.peers[id] = p
		}
		runs = append(runs, r)
	}
	return runs
}

// TestFleetDifferential: the multi-group correctness gate. Across fleet
// sizes and both drive modes, every co-hosted group is bit-identical to
// the standalone run — tenancy changes placement and batching, never
// reconciliation semantics.
func TestFleetDifferential(t *testing.T) {
	ref := standaloneReference(t)

	// The workload must exercise every decision kind, or the comparison
	// proves nothing.
	var accepts, rejects, defers int
	for _, rounds := range ref.Outcomes {
		for _, o := range rounds {
			accepts += len(o.Accepted)
			rejects += len(o.Rejected)
			defers += len(o.Deferred)
		}
	}
	if accepts == 0 || rejects == 0 || defers == 0 {
		t.Fatalf("vacuous workload: accepts=%d rejects=%d defers=%d", accepts, rejects, defers)
	}

	const groups = 5
	for _, stores := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("stores=%d/round", stores), func(t *testing.T) {
			runs := buildFleetRuns(t, stores, groups, false)
			driveRoundLockstep(t, runs)
			for _, r := range runs {
				diffStreamResults(t, r.fingerprint(), ref, true)
			}
		})
		t.Run(fmt.Sprintf("stores=%d/streaming", stores), func(t *testing.T) {
			runs := buildFleetRuns(t, stores, groups, true)
			driveStreamingLockstep(t, runs)
			for _, r := range runs {
				diffStreamResults(t, r.fingerprint(), ref, true)
			}
		})
	}
}
