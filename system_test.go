package orchestra

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestSystemCentralQuickstart(t *testing.T) {
	ctx := context.Background()
	schema := MustSchema(NewRelation("F", 2, "organism", "protein", "function"))
	sys, err := NewSystem(schema)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	alice, err := sys.AddPeer("alice", TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	bob, err := sys.AddPeer("bob", TrustOrigins(map[PeerID]int{"alice": 2}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddPeer("alice", TrustAll(1)); err == nil {
		t.Error("duplicate peer accepted")
	}

	if _, err := alice.Edit(Insert("F", Strs("rat", "prot1", "immune"), "alice")); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.PublishAndReconcile(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := bob.PublishAndReconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 1 {
		t.Fatalf("bob accepted %v", res.Accepted)
	}
	if got, ok := bob.Instance().Lookup("F", Strs("rat", "prot1")); !ok || got[2].Str() != "immune" {
		t.Errorf("bob's instance: %v %v", got, ok)
	}

	if got := StateRatio(sys.Instances(), "F"); got != 1 {
		t.Errorf("state ratio = %v", got)
	}
	if sys.Messages() != 0 || sys.NetworkLatency() != 0 {
		t.Error("central system should report no network activity")
	}
	if p, ok := sys.Peer("alice"); !ok || p != alice {
		t.Error("Peer lookup")
	}
	if len(sys.Peers()) != 2 || len(sys.SortedPeerIDs()) != 2 {
		t.Error("peer enumeration")
	}
	if sys.Schema() != schema {
		t.Error("Schema accessor")
	}
}

func TestSystemDistributed(t *testing.T) {
	ctx := context.Background()
	schema := MustSchema(NewRelation("F", 2, "organism", "protein", "function"))
	sys, err := NewSystem(schema, WithDistributedStore(200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for _, id := range []PeerID{"a", "b", "c"} {
		if _, err := sys.AddPeer(id, TrustAll(1)); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := sys.Peer("a")
	if _, err := a.Edit(Insert("F", Strs("rat", "p1", "v"), "a")); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ReconcileAll(ctx); err != nil {
		t.Fatal(err)
	}
	if sys.Messages() == 0 {
		t.Error("distributed system should generate traffic")
	}
	if sys.NetworkLatency() <= 0 {
		t.Error("latency should be charged")
	}
	b, _ := sys.Peer("b")
	if b.Instance().Len("F") != 1 {
		t.Errorf("b's instance: %v", b.Instance().Tuples("F"))
	}
	if d := sys.DeferredAcross(); d["a"] != 0 || d["b"] != 0 {
		t.Errorf("deferred = %v", d)
	}
}

// TestSystemReconcileAllFanOut forces the parallel two-phase ReconcileAll
// over both store kinds: because every peer publishes before anyone
// reconciles, one round suffices for full convergence on disjoint keys.
func TestSystemReconcileAllFanOut(t *testing.T) {
	ctx := context.Background()
	for _, distributed := range []bool{false, true} {
		name := "central"
		opts := []SystemOption{WithReconcileFanOut(4)}
		if distributed {
			name = "distributed"
			opts = append(opts, WithDistributedStore(100*time.Microsecond))
		}
		t.Run(name, func(t *testing.T) {
			schema := MustSchema(NewRelation("F", 2, "organism", "protein", "function"))
			sys, err := NewSystem(schema, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			const n = 6
			for i := 0; i < n; i++ {
				id := PeerID(fmt.Sprintf("p%d", i))
				p, err := sys.AddPeer(id, TrustAll(1))
				if err != nil {
					t.Fatal(err)
				}
				// Disjoint keys: no conflicts, everything converges.
				if _, err := p.Edit(Insert("F", Strs("org", fmt.Sprintf("prot%d", i), "v"), id)); err != nil {
					t.Fatal(err)
				}
			}
			results, err := sys.ReconcileAll(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != n {
				t.Fatalf("got %d results, want %d", len(results), n)
			}
			// Publish-barrier semantics: every peer imports all n-1 others'
			// transactions in this single round.
			for id, res := range results {
				if len(res.Accepted) != n-1 {
					t.Errorf("%s accepted %d txns, want %d", id, len(res.Accepted), n-1)
				}
			}
			if got := StateRatio(sys.Instances(), "F"); got != 1 {
				t.Errorf("state ratio = %v after one fan-out round", got)
			}
			snap := sys.Pipeline().Snapshot()
			if snap.Reconciles != n {
				t.Errorf("pipeline observed %d reconciles, want %d", snap.Reconciles, n)
			}
			if snap.WorkersBusy != 0 || snap.WorkersBusyPeak < 1 {
				t.Errorf("busy gauge: %+v", snap)
			}
		})
	}
}

// TestSystemDurableFanOutRace: transactions recovered from a durable store
// are gob-decoded, so their unexported encoding caches start empty; the
// central store must re-warm them before handing the shared *Transaction
// pointers to concurrently reconciling peers. Run with -race (this was a
// reproducible data race before the ingestion-time warm-up).
func TestSystemDurableFanOutRace(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	schema := MustSchema(NewRelation("F", 2, "organism", "protein", "function"))

	sys1, err := NewSystem(schema, WithStoreDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys1.AddPeer("a", TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := a.Edit(Insert("F", Strs("org", fmt.Sprintf("p%d", i), "v"), "a")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.PublishAndReconcile(ctx); err != nil {
		t.Fatal(err)
	}
	sys1.Close()

	// Reopen: several fresh peers reconcile the recovered history
	// concurrently.
	sys2, err := NewSystem(schema, WithStoreDir(dir), WithReconcileFanOut(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	for _, id := range []PeerID{"b", "c", "d", "e"} {
		if _, err := sys2.AddPeer(id, TrustAll(1)); err != nil {
			t.Fatal(err)
		}
	}
	results, err := sys2.ReconcileAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for id, res := range results {
		if len(res.Accepted) != 20 {
			t.Errorf("%s accepted %d recovered txns, want 20", id, len(res.Accepted))
		}
	}
}

// TestSystemInterleavedReconcile: the historical registration-order pass is
// still available and keeps its earlier-peers-first visibility.
func TestSystemInterleavedReconcile(t *testing.T) {
	ctx := context.Background()
	schema := MustSchema(NewRelation("F", 2, "organism", "protein", "function"))
	sys, err := NewSystem(schema, WithInterleavedReconcile())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	first, _ := sys.AddPeer("first", TrustAll(1))
	last, _ := sys.AddPeer("last", TrustAll(1))
	if _, err := last.Edit(Insert("F", Strs("org", "p1", "v"), "last")); err != nil {
		t.Fatal(err)
	}
	res, err := sys.ReconcileAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// "first" reconciled before "last" published, so it sees nothing this
	// round — the historical semantics.
	if n := len(res["first"].Accepted); n != 0 {
		t.Errorf("interleaved: first accepted %d txns in the same round", n)
	}
	if first.Instance().Len("F") != 0 {
		t.Error("interleaved: first should not have imported same-round txns")
	}
	if _, err := sys.ReconcileAll(ctx); err != nil {
		t.Fatal(err)
	}
	if first.Instance().Len("F") != 1 {
		t.Error("interleaved: first should import in the next round")
	}
}

func TestSystemDurableStore(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	schema := MustSchema(NewRelation("F", 1, "k", "v"))

	sys, err := NewSystem(schema, WithStoreDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sys.AddPeer("a", TrustAll(1))
	a.Edit(Insert("F", Strs("k1", "v1"), "a"))
	if _, err := a.PublishAndReconcile(ctx); err != nil {
		t.Fatal(err)
	}
	sys.Close()

	// Reopen: a fresh peer imports the recovered history.
	sys2, err := NewSystem(schema, WithStoreDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	b, err := sys2.AddPeer("b", TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.PublishAndReconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 1 || b.Instance().Len("F") != 1 {
		t.Errorf("b after recovery: %+v, instance %v", res, b.Instance().Tuples("F"))
	}
}

// TestSystemConflictResolutionFlow exercises the full deferral/resolution
// loop through the public API.
func TestSystemConflictResolutionFlow(t *testing.T) {
	ctx := context.Background()
	schema := MustSchema(NewRelation("F", 2, "organism", "protein", "function"))
	sys, _ := NewSystem(schema)
	defer sys.Close()
	a, _ := sys.AddPeer("a", TrustAll(1))
	b, _ := sys.AddPeer("b", TrustAll(1))
	q, _ := sys.AddPeer("q", TrustAll(1))

	a.Edit(Insert("F", Strs("rat", "p1", "va"), "a"))
	a.PublishAndReconcile(ctx)
	b.Edit(Insert("F", Strs("rat", "p1", "vb"), "b"))
	b.PublishAndReconcile(ctx)

	res, err := q.PublishAndReconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deferred) != 2 || len(res.Groups) != 1 {
		t.Fatalf("deferral: %+v", res)
	}
	g := q.Engine().ConflictGroups()[0]
	if _, err := q.Resolve(ctx, g.Conflict, 0); err != nil {
		t.Fatal(err)
	}
	if q.Instance().Len("F") != 1 {
		t.Errorf("q after resolution: %v", q.Instance().Tuples("F"))
	}
	if len(q.Engine().ConflictGroups()) != 0 {
		t.Error("groups should be cleared")
	}
}

func TestTrustPolicyIntegration(t *testing.T) {
	ctx := context.Background()
	schema := MustSchema(NewRelation("F", 2, "organism", "protein", "function"))
	policy, err := ParseTrustPolicy(`
priority 2 when origin = 'curator' and attr('organism') = 'rat'
priority 1 when origin = 'curator'
`)
	if err != nil {
		t.Fatal(err)
	}
	policy.WithSchema(schema)

	sys, _ := NewSystem(schema)
	defer sys.Close()
	curator, _ := sys.AddPeer("curator", TrustAll(1))
	outsider, _ := sys.AddPeer("outsider", TrustAll(1))
	q, err := sys.AddPeer("q", policy)
	if err != nil {
		t.Fatal(err)
	}

	curator.Edit(Insert("F", Strs("rat", "p1", "v"), "curator"))
	curator.PublishAndReconcile(ctx)
	outsider.Edit(Insert("F", Strs("mouse", "p2", "w"), "outsider"))
	outsider.PublishAndReconcile(ctx)

	res, err := q.PublishAndReconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 1 {
		t.Fatalf("q accepted %v", res.Accepted)
	}
	if q.Instance().Len("F") != 1 {
		t.Errorf("q's instance: %v", q.Instance().Tuples("F"))
	}
}
