package orchestra

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"orchestra/internal/dht"
	"orchestra/internal/store"
)

// Rebalance and placement tests: deterministic group→store mapping,
// minimal movement on membership change, the in-flight drain proof, and
// stream healing across a migration.

// stealingStoreName finds a store name whose addition to the given ring
// takes ownership of group — so a test can force a specific group to
// migrate deterministically.
func stealingStoreName(members []string, group string) string {
	scratch := dht.NewPlacement(0)
	for _, m := range members {
		scratch.AddMember(m)
	}
	for i := 0; ; i++ {
		name := fmt.Sprintf("steal%d", i)
		scratch.AddMember(name)
		if scratch.Place(group) == name {
			return name
		}
		scratch.RemoveMember(name)
	}
}

// TestFleetPlacementDeterministic: two fleets built from the same store
// and group names agree on every assignment; growing moves groups only
// onto the new store; shrinking back restores the exact prior mapping.
func TestFleetPlacementDeterministic(t *testing.T) {
	build := func() *Fleet {
		f := NewFleet()
		t.Cleanup(func() { f.Close() })
		for _, s := range []string{"s0", "s1", "s2"} {
			if err := f.AddStore(s); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 10; i++ {
			spec := GroupSpec{ID: fmt.Sprintf("g%d", i), Schema: streamSchema()}
			if _, err := f.AddGroup(spec); err != nil {
				t.Fatal(err)
			}
		}
		return f
	}
	owners := func(f *Fleet) map[string]string {
		out := make(map[string]string)
		for _, g := range f.Groups() {
			name, ok := f.StoreFor(g.ID())
			if !ok {
				t.Fatalf("group %s unplaced", g.ID())
			}
			out[g.ID()] = name
		}
		return out
	}

	fa, fb := build(), build()
	before := owners(fa)
	for g, s := range owners(fb) {
		if before[g] != s {
			t.Fatalf("placement not deterministic: group %s on %s vs %s", g, before[g], s)
		}
	}

	// Grow: only groups now owned by the new store move, and only onto it.
	// The store name is chosen so it provably steals g0 — the movement
	// assertions are deterministic, not a roll of the hash.
	steal := stealingStoreName([]string{"s0", "s1", "s2"}, "g0")
	if err := fa.AddStore(steal); err != nil {
		t.Fatal(err)
	}
	grown := owners(fa)
	moved := make(map[string]bool)
	for _, ev := range fa.Migrations() {
		if ev.To != steal {
			t.Errorf("grow moved group %s to %s, want only moves onto %s", ev.Group, ev.To, steal)
		}
		moved[ev.Group] = true
	}
	if !moved["g0"] {
		t.Errorf("store %s was chosen to own g0, but g0 did not migrate", steal)
	}
	for g, s := range grown {
		if s != before[g] && !moved[g] {
			t.Errorf("group %s silently changed owner %s → %s", g, before[g], s)
		}
		if s == before[g] && moved[g] {
			t.Errorf("group %s migrated without changing owner", g)
		}
	}
	if len(moved) == len(grown) {
		t.Fatal("growing moved every group; movement is not minimal")
	}

	// Shrink back: the mapping returns to exactly the 3-store assignment.
	if err := fa.RemoveStore(steal); err != nil {
		t.Fatal(err)
	}
	for g, s := range owners(fa) {
		if before[g] != s {
			t.Errorf("after shrink, group %s on %s, want %s", g, s, before[g])
		}
	}
}

// TestFleetRebalanceDrainsInFlight: a store joins while every group is
// mid-reconciliation. Each migration's drain proof (ActiveAtMove, the
// in-flight gauge sampled after the migration took exclusive ownership)
// must be zero, and no writes or frontiers are lost: every group converges
// to exactly the rows its writer published.
func TestFleetRebalanceDrainsInFlight(t *testing.T) {
	ctx := context.Background()
	f := NewFleet()
	defer f.Close()
	for _, s := range []string{"s0", "s1"} {
		if err := f.AddStore(s); err != nil {
			t.Fatal(err)
		}
	}
	const groups = 8
	trustAll := func() *TrustPolicy { return NewTrustPolicy().MustAdd(1, "true") }
	for i := 0; i < groups; i++ {
		spec := GroupSpec{
			ID:     fmt.Sprintf("g%d", i),
			Schema: streamSchema(),
			Peers:  []GroupPeer{{ID: "w", Trust: trustAll()}, {ID: "rdr", Trust: trustAll()}},
		}
		if _, err := f.AddGroup(spec); err != nil {
			t.Fatal(err)
		}
	}
	before := make(map[string]string)
	for _, g := range f.Groups() {
		before[g.ID()], _ = f.StoreFor(g.ID())
	}

	// Per-group writer loops: edit + full reconcile rounds, running across
	// the membership change. The routed store blocks a group's calls only
	// while that group migrates, so every round must succeed.
	var wrote [groups]atomic.Int64
	stop := make(chan struct{})
	errs := make(chan error, groups)
	var wg sync.WaitGroup
	for i, g := range f.Groups() {
		wg.Add(1)
		go func(i int, g *Group) {
			defer wg.Done()
			w, _ := g.System().Peer("w")
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := w.Edit(Insert("F", Strs(g.ID(), fmt.Sprintf("row%d", n), "fn"), "w")); err != nil {
					errs <- fmt.Errorf("group %s edit: %w", g.ID(), err)
					return
				}
				if _, err := g.System().ReconcileAll(ctx); err != nil {
					errs <- fmt.Errorf("group %s round: %w", g.ID(), err)
					return
				}
				wrote[i].Add(1)
			}
		}(i, g)
	}
	time.Sleep(20 * time.Millisecond)                      // let the workload get in flight
	steal := stealingStoreName([]string{"s0", "s1"}, "g0") // provably moves g0
	if err := f.AddStore(steal); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // keep writing on the new layout
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	migs := f.Migrations()
	if len(migs) == 0 {
		t.Fatal("adding a third store migrated nothing; the drain path went unexercised")
	}
	for _, ev := range migs {
		if ev.ActiveAtMove != 0 {
			t.Errorf("group %s moved with %d store operations in flight", ev.Group, ev.ActiveAtMove)
		}
		if ev.To != steal {
			t.Errorf("group %s moved to %s during grow, want %s", ev.Group, ev.To, steal)
		}
		if before[ev.Group] != ev.From {
			t.Errorf("group %s moved from %s, but lived on %s", ev.Group, ev.From, before[ev.Group])
		}
	}

	// Convergence: nothing was lost or replayed across the moves. The
	// reader imports exactly the writer's rows, on migrated and unmigrated
	// groups alike.
	for i, g := range f.Groups() {
		if _, err := g.System().ReconcileAll(ctx); err != nil {
			t.Fatalf("group %s final round: %v", g.ID(), err)
		}
		want := int(wrote[i].Load())
		w, _ := g.System().Peer("w")
		rdr, _ := g.System().Peer("rdr")
		if got := rdr.Instance().Len("F"); got != want {
			t.Errorf("group %s: reader has %d rows, writer published %d", g.ID(), got, want)
		}
		if !w.Instance().Equal(rdr.Instance()) {
			t.Errorf("group %s: writer and reader instances diverge after rebalance", g.ID())
		}
	}
}

// TestFleetMigrationHealsStreams: a group's reconcile streams survive its
// migration. The move closes the tenant's watch subscriptions; the
// streaming layer resubscribes through the routing gate and lands on the
// new store, so a publish after the move still reaches every peer.
func TestFleetMigrationHealsStreams(t *testing.T) {
	ctx := context.Background()
	f := NewFleet()
	defer f.Close()
	if err := f.AddStore("s0"); err != nil {
		t.Fatal(err)
	}
	trustAll := func() *TrustPolicy { return NewTrustPolicy().MustAdd(1, "true") }
	var mu sync.Mutex
	frontier := make(map[PeerID]Epoch)
	g, err := f.AddGroup(GroupSpec{
		ID:     "G",
		Schema: streamSchema(),
		Peers:  []GroupPeer{{ID: "w", Trust: trustAll()}, {ID: "rdr", Trust: trustAll()}},
		SystemOptions: []SystemOption{
			WithStreamObserver(func(sr store.StreamResult) {
				mu.Lock()
				if sr.To > frontier[sr.Peer] {
					frontier[sr.Peer] = sr.To
				}
				mu.Unlock()
			}),
			WithStreamPoll(2 * time.Millisecond),
			WithStreamRetry(time.Millisecond, 20*time.Millisecond),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := g.System().Peer("w")
	rdr, _ := g.System().Peer("rdr")

	sctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- g.System().RunStreaming(sctx) }()

	publishAndWait := func(row string) {
		t.Helper()
		if _, err := w.Edit(Insert("F", Strs("org", row, "fn"), "w")); err != nil {
			t.Fatal(err)
		}
		epoch, err := w.Publish(ctx)
		if err != nil {
			t.Fatal(err)
		}
		waitStream(t, &mu, "frontier past "+row, func() bool {
			return frontier["w"] >= epoch && frontier["rdr"] >= epoch
		})
	}
	publishAndWait("before-move")

	// Force G to migrate: add a store that the ring places G on.
	steal := stealingStoreName([]string{"s0"}, "G")
	if err := f.AddStore(steal); err != nil {
		t.Fatal(err)
	}
	migs := f.Migrations()
	if len(migs) != 1 || migs[0].Group != "G" || migs[0].To != steal {
		t.Fatalf("migrations = %+v, want G → %s", migs, steal)
	}
	if migs[0].ActiveAtMove != 0 {
		t.Fatalf("G moved with %d operations in flight", migs[0].ActiveAtMove)
	}
	if name, _ := f.StoreFor("G"); name != steal {
		t.Fatalf("G on %s after move, want %s", name, steal)
	}

	// The streams resubscribed against the new location: a fresh publish
	// still reaches the reader.
	publishAndWait("after-move")
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("RunStreaming: %v", err)
	}
	if got := rdr.Instance().Len("F"); got != 2 {
		t.Fatalf("reader has %d rows after the move, want 2: %v", got, rdr.Instance().Tuples("F"))
	}
}
