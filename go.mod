module orchestra

go 1.24
